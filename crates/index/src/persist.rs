//! Index persistence: saving the computed annotations to a compact
//! binary image and reloading them without re-running the creation
//! pass.
//!
//! The image stores exactly what the paper's design stores — per-node
//! hashes for the string index and `[node, state, value]` tuples for
//! each typed index — in node order, so loading is a single
//! sorted-run **bulk load** per B+tree (no random inserts). The
//! trigram substring index, when configured, is rebuilt from the
//! document on load (its source of truth is the character data, which
//! the document already persists).
//!
//! A lightweight fingerprint (node counts + the document node's hash)
//! guards against loading an image that does not belong to the
//! document at hand.
//!
//! The multi-document [`IndexService`] catalog persists on top of the
//! same single-document images: [`IndexService::save_catalog`] writes
//! one manifest (service config, doc ids, per-doc versions) plus one
//! serialized document and one index image per hosted document, and
//! [`IndexService::load_catalog`] restores the service with identical
//! shard count, ids and versions.

use std::io::{self, Read, Write};
use std::path::Path;

use xvi_fsm::XmlType;
use xvi_hash::HashValue;
use xvi_xml::{Document, NodeId};

use crate::config::IndexConfig;
use crate::error::IndexError;
use crate::manager::IndexManager;
use crate::service::{IndexService, ServiceConfig};

const MAGIC: &[u8; 4] = b"XVI1";
const CATALOG_MAGIC: &[u8; 4] = b"XVC2";
/// The version-1 magic: catalogs written before the manifest carried a
/// version field. Recognised only to reject them with a *typed*
/// version error instead of "not a catalog".
const CATALOG_MAGIC_V1: &[u8; 4] = b"XVC1";
/// Catalog manifest format version. Bumped whenever the manifest
/// layout changes; [`IndexService::load_catalog`] refuses any other
/// version with a typed [`IndexError::CatalogVersion`] instead of
/// mis-parsing the bytes. (Version 2 introduced the version field
/// itself — with a new magic, so a version-1 manifest's shard count
/// cannot alias as a version. Version 3 appends, after the document
/// list, one u64 per shard — the write-ahead-log sequence number each
/// shard had reached when the images were captured, so recovery knows
/// exactly which WAL records the checkpoint already covers — and one
/// final u64 with the total committed-transaction count at capture, so
/// [`IndexService::commit_count`] stays monotonic across restarts.
/// Index statistics are *rebuilt* from the bulk-loaded trees on load,
/// not serialized.)
const CATALOG_VERSION: u32 = 3;

fn catalog_version_error(found: u32) -> io::Error {
    // Typed rejection: the caller can downcast the source to
    // `IndexError::CatalogVersion` to distinguish "wrong version" from
    // plain corruption.
    io::Error::new(
        io::ErrorKind::InvalidData,
        IndexError::CatalogVersion {
            found,
            supported: CATALOG_VERSION,
        },
    )
}

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

pub(crate) fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Narrows a length/count to the persistent format's `u32` field
/// width, rejecting (instead of silently truncating via `as u32`)
/// values that do not fit — a truncated count would make the manifest
/// or WAL record parse cleanly to *wrong* data. The error's source is
/// a typed [`IndexError::Oversize`].
pub(crate) fn checked_u32(len: usize, what: &'static str) -> io::Result<u32> {
    u32::try_from(len).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            IndexError::Oversize {
                what,
                len: len as u64,
            },
        )
    })
}

fn type_tag(ty: XmlType) -> u8 {
    match ty {
        XmlType::Double => 0,
        XmlType::Decimal => 1,
        XmlType::Integer => 2,
        XmlType::Boolean => 3,
        XmlType::DateTime => 4,
        XmlType::Date => 5,
        XmlType::Time => 6,
    }
}

fn type_from_tag(tag: u8) -> io::Result<XmlType> {
    Ok(match tag {
        0 => XmlType::Double,
        1 => XmlType::Decimal,
        2 => XmlType::Integer,
        3 => XmlType::Boolean,
        4 => XmlType::DateTime,
        5 => XmlType::Date,
        6 => XmlType::Time,
        other => return Err(bad(format!("unknown type tag {other}"))),
    })
}

fn write_index_config(w: &mut impl Write, cfg: &IndexConfig) -> io::Result<()> {
    w.write_all(&[
        u8::from(cfg.string_index),
        u8::from(cfg.substring_index),
        cfg.typed.len() as u8,
    ])?;
    for &ty in &cfg.typed {
        w.write_all(&[type_tag(ty)])?;
    }
    Ok(())
}

fn read_index_config(r: &mut impl Read) -> io::Result<IndexConfig> {
    let mut flags = [0u8; 3];
    r.read_exact(&mut flags)?;
    let mut typed = Vec::with_capacity(flags[2] as usize);
    for _ in 0..flags[2] {
        let mut t = [0u8; 1];
        r.read_exact(&mut t)?;
        typed.push(type_from_tag(t[0])?);
    }
    Ok(IndexConfig {
        string_index: flags[0] != 0,
        typed,
        substring_index: flags[1] != 0,
    })
}

impl IndexManager {
    /// Serialises the index image for later [`IndexManager::load_from`].
    pub fn save_to(&self, doc: &Document, mut w: impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;

        // Fingerprint: the image is only valid for this document state.
        let stats = doc.stats();
        write_u64(&mut w, stats.total_nodes as u64)?;
        write_u64(&mut w, stats.text_bytes as u64)?;
        write_u32(
            &mut w,
            self.hash_of(doc.document_node())
                .unwrap_or(HashValue::EMPTY)
                .raw(),
        )?;

        // Config.
        let cfg = self.config();
        write_index_config(&mut w, cfg)?;

        // String section: (node, hash) in node order.
        if let Some(s) = self.string_index() {
            let entries: Vec<(u32, u32)> = (0..doc.arena_size())
                .filter_map(|i| {
                    s.hash_of(NodeId::from_index(i))
                        .map(|h| (i as u32, h.raw()))
                })
                .collect();
            write_u64(&mut w, entries.len() as u64)?;
            for (n, h) in entries {
                write_u32(&mut w, n)?;
                write_u32(&mut w, h)?;
            }
        }

        // Typed sections: (node, state, value-or-NaN) in node order.
        for &ty in &cfg.typed {
            let idx = self.typed_index(ty).expect("configured type");
            let entries: Vec<(u32, u16, f64)> = (0..doc.arena_size())
                .filter_map(|i| {
                    let node = NodeId::from_index(i);
                    idx.state_of(node)
                        .map(|st| (i as u32, st, idx.value_of(node).unwrap_or(f64::NAN)))
                })
                .collect();
            write_u64(&mut w, entries.len() as u64)?;
            for (n, st, v) in entries {
                write_u32(&mut w, n)?;
                w.write_all(&st.to_le_bytes())?;
                write_u64(&mut w, v.to_bits())?;
            }
        }
        Ok(())
    }

    /// Reconstructs an index from a saved image, validating that it
    /// belongs to `doc`'s current state.
    pub fn load_from(doc: &Document, mut r: impl Read) -> io::Result<IndexManager> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not an xvi index image"));
        }

        let stats = doc.stats();
        if read_u64(&mut r)? != stats.total_nodes as u64 {
            return Err(bad(
                "node count mismatch: image is for a different document",
            ));
        }
        if read_u64(&mut r)? != stats.text_bytes as u64 {
            return Err(bad("text size mismatch: image is for a different document"));
        }
        let image_root_hash = read_u32(&mut r)?;

        let config = read_index_config(&mut r)?;
        let (string_index, substring_index) = (config.string_index, config.substring_index);
        let typed_types = config.typed.clone();

        // The strongest cheap staleness check: the document node's hash
        // covers every text byte of the document, so any value change
        // since `save_to` is detected. Recomputing it costs one pass
        // over the character data — far less than a full re-index.
        if string_index {
            let current = xvi_hash::hash_str(&doc.string_value(doc.document_node()));
            if current.raw() != image_root_hash {
                return Err(bad("root hash mismatch: stale index image"));
            }
        }

        let mut mgr = IndexManager::new_empty(doc, config);

        if string_index {
            let n = read_u64(&mut r)? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let node = read_u32(&mut r)?;
                let hash = HashValue::from_raw(read_u32(&mut r)?)
                    .ok_or_else(|| bad("corrupt hash value in image"))?;
                if node as usize >= doc.arena_size() {
                    return Err(bad("node id out of range in image"));
                }
                entries.push((node, hash));
            }
            mgr.load_string_entries(entries)?;
        }

        for ty in typed_types {
            let n = read_u64(&mut r)? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let node = read_u32(&mut r)?;
                let mut st = [0u8; 2];
                r.read_exact(&mut st)?;
                let state = u16::from_le_bytes(st);
                let value = f64::from_bits(read_u64(&mut r)?);
                if node as usize >= doc.arena_size() {
                    return Err(bad("node id out of range in image"));
                }
                entries.push((node, state, (!value.is_nan()).then_some(value)));
            }
            mgr.load_typed_entries(ty, entries)?;
        }

        if substring_index {
            mgr.rebuild_substring_index(doc);
        }
        Ok(mgr)
    }
}

pub(crate) fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, checked_u32(s.len(), "string length")?)?;
    w.write_all(s.as_bytes())
}

pub(crate) fn read_str(r: &mut impl Read) -> io::Result<String> {
    let n = read_u32(r)? as usize;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("non-UTF-8 string in catalog manifest"))
}

/// Writes `content` produced by `fill` to `<dir>/<name>` crash-safely:
/// the bytes go to a `.tmp` sibling first, are fsynced, renamed over
/// the final name, and the parent **directory** is fsynced so the
/// rename itself survives power loss — a torn save never clobbers a
/// previously valid file, and a completed save cannot be undone by a
/// crash. A failing `fill` (or rename) removes the temp file instead
/// of stranding it.
pub(crate) fn write_file_atomically(
    dir: &Path,
    name: &str,
    fill: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let result = (|| -> io::Result<()> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        fill(&mut w)?;
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, dir.join(name))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    crate::wal::fsync_dir(dir)
}

/// Removes stranded `*.tmp` siblings (left by a crash between a temp
/// write and its rename) so they cannot accumulate forever. Run by
/// both `save_catalog` and `load_catalog` — either end of a round trip
/// cleans up after an earlier torn save.
pub(crate) fn sweep_tmp_files(dir: &Path) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            std::fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// Removes `doc<N>.xml` / `doc<N>.idx` pairs with `N >= keep` — the
/// orphans a re-save into a directory that previously held more
/// documents would otherwise leave paired with the new manifest.
fn remove_orphan_docs(dir: &Path, keep: usize) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_suffix(".xml")
            .or_else(|| name.strip_suffix(".idx"))
        else {
            continue;
        };
        let Some(n) = stem
            .strip_prefix("doc")
            .and_then(|d| d.parse::<usize>().ok())
        else {
            continue;
        };
        if n >= keep {
            std::fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// Writes one captured catalog state into `dir`: per-doc images plus
/// the version-3 manifest (which carries `seqs`, the per-shard WAL
/// sequence numbers the capture observed — all zeros for a service
/// without a WAL — and `commits`, the committed-transaction total at
/// capture). Shared by [`IndexService::save_catalog`] and the WAL
/// checkpointer.
pub(crate) fn save_snapshot_to(
    dir: &Path,
    snap: &crate::ServiceSnapshot,
    seqs: &[u64],
    commits: u64,
    cfg: &ServiceConfig,
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    sweep_tmp_files(dir)?;
    for (i, (_, doc_snap)) in snap.iter().enumerate() {
        write_file_atomically(dir, &format!("doc{i}.xml"), |w| {
            w.write_all(xvi_xml::serialize::to_string(doc_snap.document()).as_bytes())
        })?;
        write_file_atomically(dir, &format!("doc{i}.idx"), |w| {
            doc_snap.index().save_to(doc_snap.document(), w)
        })?;
    }
    write_file_atomically(dir, "catalog.xvi", |manifest| {
        manifest.write_all(CATALOG_MAGIC)?;
        write_u32(manifest, CATALOG_VERSION)?;
        write_u32(manifest, checked_u32(cfg.shards, "shard count")?)?;
        write_u32(manifest, checked_u32(cfg.max_group, "group limit")?)?;
        write_index_config(manifest, &cfg.index)?;
        write_u32(manifest, checked_u32(snap.doc_count(), "document count")?)?;
        for (id, doc_snap) in snap.iter() {
            write_str(manifest, id)?;
            write_u64(manifest, doc_snap.version())?;
        }
        for &seq in seqs {
            write_u64(manifest, seq)?;
        }
        write_u64(manifest, commits)?;
        Ok(())
    })?;
    // The manifest now names doc0..docN-1; anything beyond that is an
    // orphan from an earlier, larger save in the same directory.
    remove_orphan_docs(dir, snap.doc_count())
}

/// A parsed catalog/checkpoint directory: everything
/// [`IndexService::load_catalog`] needs to rebuild a service, plus the
/// per-shard WAL sequence numbers recovery needs to know which log
/// records the images already cover.
pub(crate) struct Checkpoint {
    pub(crate) shards: usize,
    pub(crate) max_group: usize,
    pub(crate) index: IndexConfig,
    /// Per-shard WAL sequence captured when the images were saved;
    /// recovery replays only records with a larger sequence.
    pub(crate) seqs: Vec<u64>,
    /// Total committed transactions at capture time; restore seeds
    /// [`IndexService::commit_count`] from it so the total stays
    /// monotonic across restarts.
    pub(crate) commits: u64,
    /// `(id, version, document, index)` per hosted document.
    pub(crate) docs: Vec<(String, u64, Document, IndexManager)>,
}

/// Reads the manifest and every per-doc image under `dir` (also
/// sweeping stranded `*.tmp` files from an earlier torn save).
pub(crate) fn read_checkpoint(dir: &Path) -> io::Result<Checkpoint> {
    let mut manifest = std::io::BufReader::new(std::fs::File::open(dir.join("catalog.xvi"))?);
    sweep_tmp_files(dir)?;
    let mut magic = [0u8; 4];
    manifest.read_exact(&mut magic)?;
    if &magic == CATALOG_MAGIC_V1 {
        return Err(catalog_version_error(1));
    }
    if &magic != CATALOG_MAGIC {
        return Err(bad("not an xvi catalog manifest"));
    }
    let version = read_u32(&mut manifest)?;
    if version != CATALOG_VERSION {
        return Err(catalog_version_error(version));
    }
    let shards = read_u32(&mut manifest)? as usize;
    let max_group = read_u32(&mut manifest)? as usize;
    let index = read_index_config(&mut manifest)?;
    let doc_count = read_u32(&mut manifest)? as usize;
    let mut docs = Vec::with_capacity(doc_count.min(1 << 16));
    for i in 0..doc_count {
        let id = read_str(&mut manifest)?;
        let version = read_u64(&mut manifest)?;
        let xml = std::fs::read_to_string(dir.join(format!("doc{i}.xml")))?;
        let doc = Document::parse(&xml)
            .map_err(|e| bad(format!("catalog document {id:?} failed to parse: {e}")))?;
        let image = std::io::BufReader::new(std::fs::File::open(dir.join(format!("doc{i}.idx")))?);
        let idx = IndexManager::load_from(&doc, image)?;
        docs.push((id, version, doc, idx));
    }
    let mut seqs = Vec::with_capacity(shards.min(1 << 16));
    for _ in 0..shards {
        seqs.push(read_u64(&mut manifest)?);
    }
    let commits = read_u64(&mut manifest)?;
    Ok(Checkpoint {
        shards,
        max_group,
        index,
        seqs,
        commits,
        docs,
    })
}

impl IndexService {
    /// Persists the whole catalog into `dir` (created if missing): a
    /// `catalog.xvi` manifest carrying the service configuration
    /// (shard count, group limit, index config), every document id and
    /// its committed version — plus the per-shard WAL sequence numbers
    /// when the service has a write-ahead log — and one serialized
    /// document (`doc<i>.xml`) and one index image (`doc<i>.idx`) per
    /// hosted document. The save works from one [`ServiceSnapshot`],
    /// so a concurrently committing service persists a consistent
    /// per-document prefix of the commit history.
    ///
    /// Every file is written to a temporary sibling, fsynced, renamed
    /// into place and made durable with a directory fsync, with the
    /// manifest renamed **last** — a crash or full disk mid-save never
    /// truncates or tears an existing manifest or image. Stranded
    /// `*.tmp` files from an earlier torn save are swept, and
    /// `doc<N>.*` files beyond the new manifest's document count are
    /// deleted, so the directory is self-consistent after every save —
    /// re-saving a shrunk catalog in place is safe.
    ///
    /// [`ServiceSnapshot`]: crate::ServiceSnapshot
    pub fn save_catalog(&self, dir: &Path) -> io::Result<()> {
        // Serialized with checkpoint(): a save into the WAL directory
        // interleaving with a checkpoint's log truncation could
        // otherwise leave a manifest older than the truncated logs.
        let _serialize = self.checkpoint_guard();
        let (snap, seqs, commits) = self.capture_for_checkpoint();
        save_snapshot_to(dir, &snap, &seqs, commits, self.config())
    }

    /// Restores a service persisted by [`IndexService::save_catalog`]:
    /// shard count, group limit, index configuration, document ids and
    /// per-document versions all round-trip. Each document is reparsed
    /// and its indices bulk-loaded from the saved image (with the
    /// image's staleness fingerprint still enforced).
    ///
    /// The restored service is **ephemeral** (no write-ahead log) and
    /// the saved WAL sequence numbers are ignored: this is the plain
    /// full-image restore. To reopen a WAL-backed service — checkpoint
    /// plus replay of the durable log suffix — use
    /// [`IndexService::open`] with [`Durability::Wal`].
    ///
    /// [`Durability::Wal`]: crate::service::Durability::Wal
    pub fn load_catalog(dir: &Path) -> io::Result<IndexService> {
        let cp = read_checkpoint(dir)?;
        let service = IndexService::new(ServiceConfig {
            shards: cp.shards,
            max_group: cp.max_group,
            index: cp.index,
            durability: crate::service::Durability::Ephemeral,
            ..ServiceConfig::default()
        });
        service.seed_commit_count(cp.commits);
        for (id, version, doc, idx) in cp.docs {
            service.install_version(id, doc, idx, version);
        }
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lookup;
    use xvi_datagen::Dataset;

    fn setup() -> (Document, IndexManager) {
        let doc = Document::parse(&Dataset::XMark(1).generate(5)).unwrap();
        let cfg =
            IndexConfig::with_types(&[XmlType::Double, XmlType::DateTime]).with_substring_index();
        let idx = IndexManager::build(&doc, cfg);
        (doc, idx)
    }

    #[test]
    fn save_load_roundtrip() {
        let (doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        let loaded = IndexManager::load_from(&doc, image.as_slice()).unwrap();
        loaded.verify_against(&doc).unwrap();
        // Same answers.
        assert_eq!(
            idx.query(&doc, &Lookup::range_f64(0.0..100.0)).unwrap(),
            loaded.query(&doc, &Lookup::range_f64(0.0..100.0)).unwrap()
        );
        assert_eq!(
            idx.query(&doc, &Lookup::equi("Creditcard")).unwrap(),
            loaded.query(&doc, &Lookup::equi("Creditcard")).unwrap()
        );
        assert_eq!(
            idx.query(&doc, &Lookup::contains("mailto")).unwrap(),
            loaded.query(&doc, &Lookup::contains("mailto")).unwrap()
        );
    }

    #[test]
    fn loaded_index_stays_updatable() {
        let (mut doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        let mut loaded = IndexManager::load_from(&doc, image.as_slice()).unwrap();

        let some_text = doc
            .descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), xvi_xml::NodeKind::Text(_)))
            .unwrap();
        loaded.update_value(&mut doc, some_text, "42.5").unwrap();
        loaded.verify_against(&doc).unwrap();
    }

    #[test]
    fn rejects_images_for_other_documents() {
        let (doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        let other = Document::parse("<tiny>doc</tiny>").unwrap();
        let err = IndexManager::load_from(&other, image.as_slice()).unwrap_err();
        assert!(err.to_string().contains("different document"), "{err}");
    }

    #[test]
    fn rejects_stale_images_after_updates() {
        let (mut doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        // Mutate the document without going through the index: the
        // fingerprint counts stay equal (same-length value) but the
        // root hash changes.
        let text = doc
            .descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), xvi_xml::NodeKind::Text(t) if t.len() >= 2))
            .unwrap();
        let old = doc.string_value(text);
        let mut new = old.into_bytes();
        new.swap(0, 1);
        let swapped = String::from_utf8(new).unwrap();
        let reverted = doc.set_value(text, &swapped);
        if swapped != reverted {
            let err = IndexManager::load_from(&doc, image.as_slice()).unwrap_err();
            assert!(err.to_string().contains("stale"), "{err}");
        }
    }

    #[test]
    fn rejects_garbage() {
        let doc = Document::parse("<a/>").unwrap();
        assert!(IndexManager::load_from(&doc, &b"not an image"[..]).is_err());
        assert!(IndexManager::load_from(&doc, &b"XVI1"[..]).is_err()); // truncated
    }

    /// A scratch directory under the system temp dir, removed on drop.
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> ScratchDir {
            let dir = std::env::temp_dir().join(format!("xvi-{tag}-{}", std::process::id()));
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn catalog_save_load_round_trip() {
        use xvi_xml::NodeKind;

        let config = ServiceConfig {
            shards: 3,
            max_group: 16,
            index: IndexConfig::with_types(&[XmlType::Double, XmlType::Integer]),
            durability: crate::service::Durability::Ephemeral,
            ..ServiceConfig::default()
        };
        let service = IndexService::new(config);
        for (id, xml) in [
            ("alpha", "<person><name>Arthur</name><age>42</age></person>"),
            ("beta", "<person><name>Ford</name><age>200</age></person>"),
            ("gamma", "<log><n>17</n><n>18</n></log>"),
        ] {
            service.insert_document(id, Document::parse(xml).unwrap());
        }
        // Commit into one document so a non-zero version must survive
        // the round trip.
        let node = service
            .read("alpha", |doc, _| {
                doc.descendants(doc.document_node())
                    .find(|&n| matches!(doc.kind(n), NodeKind::Text(t) if t == "Arthur"))
                    .unwrap()
            })
            .unwrap();
        for value in ["Tricia", "Zaphod"] {
            let mut txn = service.begin();
            txn.set_value(node, value);
            service.commit("alpha", txn).unwrap();
        }

        let scratch = ScratchDir::new("catalog");
        service.save_catalog(&scratch.0).unwrap();
        let loaded = IndexService::load_catalog(&scratch.0).unwrap();

        // Shard count, ids and versions round-trip.
        assert_eq!(loaded.config().shards, 3);
        assert_eq!(loaded.config().max_group, 16);
        assert_eq!(loaded.config().index, service.config().index);
        assert_eq!(loaded.doc_ids(), service.doc_ids());
        for id in ["alpha", "beta", "gamma"] {
            assert_eq!(loaded.version_of(id), service.version_of(id), "{id}");
        }
        assert_eq!(loaded.version_of("alpha"), Some(2));

        // The restored indices answer identically and verify cleanly.
        for lookup in [
            Lookup::equi("Zaphod"),
            Lookup::range_f64(0.0..=1000.0),
            Lookup::typed_eq(XmlType::Integer, 17.0),
        ] {
            assert_eq!(
                loaded.snapshot_all().query(&lookup),
                service.snapshot_all().query(&lookup),
                "{lookup}"
            );
        }
        for id in loaded.doc_ids() {
            loaded
                .read(&id, |doc, idx| idx.verify_against(doc).unwrap())
                .unwrap();
        }

        // A restored service stays writable at the restored version.
        let mut txn = loaded.begin();
        txn.set_value(node, "Marvin");
        let receipt = loaded.commit("alpha", txn).unwrap();
        assert_eq!(receipt.version, 3);
    }

    #[test]
    fn failing_fill_removes_the_temp_file() {
        let scratch = ScratchDir::new("tmp-cleanup");
        std::fs::create_dir_all(&scratch.0).unwrap();
        let err = write_file_atomically(&scratch.0, "out.bin", |_| {
            Err(io::Error::other("fill failed"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "fill failed");
        assert!(
            !scratch.0.join("out.bin.tmp").exists(),
            "the error path must not strand the temp file"
        );
        assert!(!scratch.0.join("out.bin").exists());
    }

    #[test]
    fn atomic_write_replaces_and_survives_success() {
        let scratch = ScratchDir::new("tmp-success");
        std::fs::create_dir_all(&scratch.0).unwrap();
        for payload in [b"first".as_slice(), b"second".as_slice()] {
            write_file_atomically(&scratch.0, "out.bin", |w| w.write_all(payload)).unwrap();
            assert_eq!(std::fs::read(scratch.0.join("out.bin")).unwrap(), payload);
            assert!(!scratch.0.join("out.bin.tmp").exists());
        }
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn oversize_counts_are_rejected_with_a_typed_error() {
        let err = checked_u32(u32::MAX as usize + 1, "document count").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let source = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<IndexError>())
            .expect("typed Oversize source");
        assert!(
            matches!(
                source,
                IndexError::Oversize {
                    what: "document count",
                    len
                } if *len == u32::MAX as u64 + 1
            ),
            "{source:?}"
        );
        // In-range values pass through unchanged.
        assert_eq!(checked_u32(0, "x").unwrap(), 0);
        assert_eq!(checked_u32(u32::MAX as usize, "x").unwrap(), u32::MAX);
    }

    #[test]
    fn load_catalog_rejects_garbage() {
        let scratch = ScratchDir::new("catalog-garbage");
        std::fs::create_dir_all(&scratch.0).unwrap();
        assert!(IndexService::load_catalog(&scratch.0).is_err()); // no manifest
        std::fs::write(scratch.0.join("catalog.xvi"), b"nope").unwrap();
        assert!(IndexService::load_catalog(&scratch.0).is_err());
    }
}
