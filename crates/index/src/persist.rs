//! Index persistence: saving the computed annotations to a compact
//! binary image and reloading them without re-running the creation
//! pass.
//!
//! The image stores exactly what the paper's design stores — per-node
//! hashes for the string index and `[node, state, value]` tuples for
//! each typed index — in node order, so loading is a single
//! sorted-run **bulk load** per B+tree (no random inserts). The
//! trigram substring index, when configured, is rebuilt from the
//! document on load (its source of truth is the character data, which
//! the document already persists).
//!
//! A lightweight fingerprint (node counts + the document node's hash)
//! guards against loading an image that does not belong to the
//! document at hand.

use std::io::{self, Read, Write};

use xvi_fsm::XmlType;
use xvi_hash::HashValue;
use xvi_xml::{Document, NodeId};

use crate::config::IndexConfig;
use crate::manager::IndexManager;

const MAGIC: &[u8; 4] = b"XVI1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn type_tag(ty: XmlType) -> u8 {
    match ty {
        XmlType::Double => 0,
        XmlType::Decimal => 1,
        XmlType::Integer => 2,
        XmlType::Boolean => 3,
        XmlType::DateTime => 4,
        XmlType::Date => 5,
        XmlType::Time => 6,
    }
}

fn type_from_tag(tag: u8) -> io::Result<XmlType> {
    Ok(match tag {
        0 => XmlType::Double,
        1 => XmlType::Decimal,
        2 => XmlType::Integer,
        3 => XmlType::Boolean,
        4 => XmlType::DateTime,
        5 => XmlType::Date,
        6 => XmlType::Time,
        other => return Err(bad(format!("unknown type tag {other}"))),
    })
}

impl IndexManager {
    /// Serialises the index image for later [`IndexManager::load_from`].
    pub fn save_to(&self, doc: &Document, mut w: impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;

        // Fingerprint: the image is only valid for this document state.
        let stats = doc.stats();
        write_u64(&mut w, stats.total_nodes as u64)?;
        write_u64(&mut w, stats.text_bytes as u64)?;
        write_u32(
            &mut w,
            self.hash_of(doc.document_node())
                .unwrap_or(HashValue::EMPTY)
                .raw(),
        )?;

        // Config.
        let cfg = self.config();
        w.write_all(&[
            u8::from(cfg.string_index),
            u8::from(cfg.substring_index),
            cfg.typed.len() as u8,
        ])?;
        for &ty in &cfg.typed {
            w.write_all(&[type_tag(ty)])?;
        }

        // String section: (node, hash) in node order.
        if let Some(s) = self.string_index() {
            let entries: Vec<(u32, u32)> = (0..doc.arena_size())
                .filter_map(|i| {
                    s.hash_of(NodeId::from_index(i))
                        .map(|h| (i as u32, h.raw()))
                })
                .collect();
            write_u64(&mut w, entries.len() as u64)?;
            for (n, h) in entries {
                write_u32(&mut w, n)?;
                write_u32(&mut w, h)?;
            }
        }

        // Typed sections: (node, state, value-or-NaN) in node order.
        for &ty in &cfg.typed {
            let idx = self.typed_index(ty).expect("configured type");
            let entries: Vec<(u32, u16, f64)> = (0..doc.arena_size())
                .filter_map(|i| {
                    let node = NodeId::from_index(i);
                    idx.state_of(node)
                        .map(|st| (i as u32, st, idx.value_of(node).unwrap_or(f64::NAN)))
                })
                .collect();
            write_u64(&mut w, entries.len() as u64)?;
            for (n, st, v) in entries {
                write_u32(&mut w, n)?;
                w.write_all(&st.to_le_bytes())?;
                write_u64(&mut w, v.to_bits())?;
            }
        }
        Ok(())
    }

    /// Reconstructs an index from a saved image, validating that it
    /// belongs to `doc`'s current state.
    pub fn load_from(doc: &Document, mut r: impl Read) -> io::Result<IndexManager> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not an xvi index image"));
        }

        let stats = doc.stats();
        if read_u64(&mut r)? != stats.total_nodes as u64 {
            return Err(bad(
                "node count mismatch: image is for a different document",
            ));
        }
        if read_u64(&mut r)? != stats.text_bytes as u64 {
            return Err(bad("text size mismatch: image is for a different document"));
        }
        let image_root_hash = read_u32(&mut r)?;

        let mut flags = [0u8; 3];
        r.read_exact(&mut flags)?;
        let (string_index, substring_index, n_typed) =
            (flags[0] != 0, flags[1] != 0, flags[2] as usize);
        let mut typed_types = Vec::with_capacity(n_typed);
        for _ in 0..n_typed {
            let mut t = [0u8; 1];
            r.read_exact(&mut t)?;
            typed_types.push(type_from_tag(t[0])?);
        }
        let config = IndexConfig {
            string_index,
            typed: typed_types.clone(),
            substring_index,
        };

        // The strongest cheap staleness check: the document node's hash
        // covers every text byte of the document, so any value change
        // since `save_to` is detected. Recomputing it costs one pass
        // over the character data — far less than a full re-index.
        if string_index {
            let current = xvi_hash::hash_str(&doc.string_value(doc.document_node()));
            if current.raw() != image_root_hash {
                return Err(bad("root hash mismatch: stale index image"));
            }
        }

        let mut mgr = IndexManager::new_empty(doc, config);

        if string_index {
            let n = read_u64(&mut r)? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let node = read_u32(&mut r)?;
                let hash = HashValue::from_raw(read_u32(&mut r)?)
                    .ok_or_else(|| bad("corrupt hash value in image"))?;
                if node as usize >= doc.arena_size() {
                    return Err(bad("node id out of range in image"));
                }
                entries.push((node, hash));
            }
            mgr.load_string_entries(entries)?;
        }

        for ty in typed_types {
            let n = read_u64(&mut r)? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let node = read_u32(&mut r)?;
                let mut st = [0u8; 2];
                r.read_exact(&mut st)?;
                let state = u16::from_le_bytes(st);
                let value = f64::from_bits(read_u64(&mut r)?);
                if node as usize >= doc.arena_size() {
                    return Err(bad("node id out of range in image"));
                }
                entries.push((node, state, (!value.is_nan()).then_some(value)));
            }
            mgr.load_typed_entries(ty, entries)?;
        }

        if substring_index {
            mgr.rebuild_substring_index(doc);
        }
        Ok(mgr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvi_datagen::Dataset;

    fn setup() -> (Document, IndexManager) {
        let doc = Document::parse(&Dataset::XMark(1).generate(5)).unwrap();
        let cfg =
            IndexConfig::with_types(&[XmlType::Double, XmlType::DateTime]).with_substring_index();
        let idx = IndexManager::build(&doc, cfg);
        (doc, idx)
    }

    #[test]
    fn save_load_roundtrip() {
        let (doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        let loaded = IndexManager::load_from(&doc, image.as_slice()).unwrap();
        loaded.verify_against(&doc).unwrap();
        // Same answers.
        assert_eq!(
            idx.range_lookup_f64(0.0..100.0),
            loaded.range_lookup_f64(0.0..100.0)
        );
        assert_eq!(
            idx.equi_lookup(&doc, "Creditcard"),
            loaded.equi_lookup(&doc, "Creditcard")
        );
        assert_eq!(
            idx.contains_lookup(&doc, "mailto"),
            loaded.contains_lookup(&doc, "mailto")
        );
    }

    #[test]
    fn loaded_index_stays_updatable() {
        let (mut doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        let mut loaded = IndexManager::load_from(&doc, image.as_slice()).unwrap();

        let some_text = doc
            .descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), xvi_xml::NodeKind::Text(_)))
            .unwrap();
        loaded.update_value(&mut doc, some_text, "42.5").unwrap();
        loaded.verify_against(&doc).unwrap();
    }

    #[test]
    fn rejects_images_for_other_documents() {
        let (doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        let other = Document::parse("<tiny>doc</tiny>").unwrap();
        let err = IndexManager::load_from(&other, image.as_slice()).unwrap_err();
        assert!(err.to_string().contains("different document"), "{err}");
    }

    #[test]
    fn rejects_stale_images_after_updates() {
        let (mut doc, idx) = setup();
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        // Mutate the document without going through the index: the
        // fingerprint counts stay equal (same-length value) but the
        // root hash changes.
        let text = doc
            .descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), xvi_xml::NodeKind::Text(t) if t.len() >= 2))
            .unwrap();
        let old = doc.string_value(text);
        let mut new = old.into_bytes();
        new.swap(0, 1);
        let swapped = String::from_utf8(new).unwrap();
        let reverted = doc.set_value(text, &swapped);
        if swapped != reverted {
            let err = IndexManager::load_from(&doc, image.as_slice()).unwrap_err();
            assert!(err.to_string().contains("stale"), "{err}");
        }
    }

    #[test]
    fn rejects_garbage() {
        let doc = Document::parse("<a/>").unwrap();
        assert!(IndexManager::load_from(&doc, &b"not an image"[..]).is_err());
        assert!(IndexManager::load_from(&doc, &b"XVI1"[..]).is_err()); // truncated
    }
}
