//! Single-pass index creation (paper Figure 7).
//!
//! One depth-first traversal builds *all* configured indices
//! simultaneously: at every text node the hash function `H` and the
//! typed FSMs run once over the character data; at every element the
//! children's already-computed hashes/states are folded with the
//! combination function `C` and the SCTs. The traversal is expressed
//! over enter/leave events with an explicit frame stack — the same
//! control structure as the paper's stack-based algorithm, with the
//! push/pop bookkeeping made explicit by the event stream.
//!
//! Attribute nodes are indexed on their own values when their owner
//! element is entered; per XDM they do **not** contribute to the
//! element's string value, so they never join a frame. Comments and
//! processing instructions are not value-indexed and contribute
//! nothing either.

use xvi_fsm::StateId;
use xvi_hash::{combine, hash_str, HashValue};
use xvi_xml::{cursor::dfs_events, DfsEvent, Document, NodeId, NodeKind};

use crate::string_index::StringIndex;
use crate::typed_index::TypedIndex;

/// Accumulator for one open element (or the document node): the hash
/// and per-type state of the concatenation of the text content seen so
/// far.
struct Frame {
    hash: HashValue,
    states: Vec<Option<StateId>>,
}

/// Indexes the subtree rooted at `root` (inclusive), filling the
/// string index and every typed index in one pass. Ancestors of
/// `root` are *not* touched — the caller recombines them when `root`
/// is not the document node (subtree insertion).
pub(crate) fn index_subtree(
    doc: &Document,
    root: NodeId,
    mut string: Option<&mut StringIndex>,
    typed: &mut [TypedIndex],
) {
    let identity_states: Vec<Option<StateId>> = typed
        .iter()
        .map(|t| Some(t.analyzer().sct().identity()))
        .collect();
    let mut stack: Vec<Frame> = Vec::new();

    for event in dfs_events(doc, root) {
        match event {
            DfsEvent::Enter(node) => match doc.kind(node) {
                NodeKind::Text(t) => {
                    let h = hash_str(t);
                    if let Some(s) = string.as_deref_mut() {
                        s.set(node, h);
                    }
                    if let Some(top) = stack.last_mut() {
                        top.hash = combine(top.hash, h);
                    }
                    for (i, idx) in typed.iter_mut().enumerate() {
                        let an = idx.analyzer();
                        let state = an.state_of(t);
                        let value = state
                            .filter(|&s| an.is_complete(s))
                            .and_then(|_| an.cast(t))
                            .map(|v| v.key);
                        idx.set(node, state, value);
                        if let Some(top) = stack.last_mut() {
                            top.states[i] = an.combine(top.states[i], state);
                        }
                    }
                }
                NodeKind::Element(_) | NodeKind::Document => {
                    // Attributes are indexed on their own values.
                    for attr in doc.attributes(node) {
                        if let NodeKind::Attribute { value, .. } = doc.kind(attr) {
                            if let Some(s) = string.as_deref_mut() {
                                s.set(attr, hash_str(value));
                            }
                            for idx in typed.iter_mut() {
                                let an = idx.analyzer();
                                let state = an.state_of(value);
                                let key = state
                                    .filter(|&s| an.is_complete(s))
                                    .and_then(|_| an.cast(value))
                                    .map(|v| v.key);
                                idx.set(attr, state, key);
                            }
                        }
                    }
                    stack.push(Frame {
                        hash: HashValue::EMPTY,
                        states: identity_states.clone(),
                    });
                }
                // Comments/PIs carry values but are outside the paper's
                // index coverage (text/element/attribute) and outside
                // XDM element string values.
                NodeKind::Comment(_) | NodeKind::Pi { .. } => {}
                NodeKind::Attribute { .. } | NodeKind::Free => {
                    unreachable!("attributes/freed nodes are not in the structural DFS")
                }
            },
            DfsEvent::Leave(node) => match doc.kind(node) {
                NodeKind::Element(_) | NodeKind::Document => {
                    let frame = stack.pop().expect("leave matches enter");
                    if let Some(s) = string.as_deref_mut() {
                        s.set(node, frame.hash);
                    }
                    for (i, idx) in typed.iter_mut().enumerate() {
                        let an = idx.analyzer();
                        let state = frame.states[i];
                        // Complete intermediate nodes are rare (paper
                        // Table 1's "non-leaf" column), so materialising
                        // their string value here costs next to nothing.
                        let value = state
                            .filter(|&s| an.is_complete(s))
                            .and_then(|_| an.cast(&doc.string_value(node)))
                            .map(|v| v.key);
                        idx.set(node, state, value);
                    }
                    if let Some(top) = stack.last_mut() {
                        top.hash = combine(top.hash, frame.hash);
                        for (i, idx) in typed.iter().enumerate() {
                            top.states[i] = idx.analyzer().combine(top.states[i], frame.states[i]);
                        }
                    }
                }
                _ => {}
            },
        }
    }
    debug_assert!(stack.is_empty(), "every frame is popped");
}
