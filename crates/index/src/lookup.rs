//! The unified, typed query request: one [`Lookup`] value describes
//! any lookup the indices can serve, and one generic entry point per
//! layer evaluates it — [`IndexManager::query`](crate::IndexManager::query)
//! for a bare `(Document, IndexManager)` pair,
//! [`DocSnapshot::query`](crate::DocSnapshot::query) and
//! [`ServiceSnapshot::query`](crate::ServiceSnapshot::query) for
//! lock-free snapshots, and
//! [`IndexService::query`](crate::IndexService::query) for the live
//! service.
//!
//! This mirrors the paper's central claim: *one* annotation scheme
//! (the circular-XOR hash `H` plus an FSM state with an associative
//! combination) uniformly covers equality, range and substring
//! lookups — so the API should too, instead of growing one method per
//! lookup flavor.

use std::ops::{Bound, RangeBounds};

use xvi_fsm::XmlType;
use xvi_xml::NodeId;

use crate::error::IndexError;
use crate::query::Query;

/// The outcome of evaluating a [`Lookup`]: matching nodes in a
/// deterministic order, or the reason the lookup could not be served
/// (e.g. [`IndexError::TypeNotIndexed`] or
/// [`IndexError::IndexNotConfigured`]).
pub type QueryResult = Result<Vec<NodeId>, IndexError>;

/// Owned numeric bounds for range lookups — [`RangeBounds<f64>`] made
/// storable inside a [`Lookup`].
///
/// ```
/// use xvi_index::Bounds;
///
/// let b = Bounds::from_range(40.0..=80.0);
/// assert!(b.contains(42.0) && !b.contains(81.0));
/// assert!(Bounds::all().contains(f64::MIN));
/// assert!(Bounds::eq(42.0).contains(42.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Lower bound.
    pub lo: Bound<f64>,
    /// Upper bound.
    pub hi: Bound<f64>,
}

impl Bounds {
    /// The unbounded range (`..`).
    pub fn all() -> Bounds {
        Bounds {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// The degenerate range containing exactly `key` (`key..=key`).
    pub fn eq(key: f64) -> Bounds {
        Bounds {
            lo: Bound::Included(key),
            hi: Bound::Included(key),
        }
    }

    /// Captures any standard range expression (`a..b`, `a..=b`, `..b`,
    /// `a..`, `..`).
    pub fn from_range<R: RangeBounds<f64>>(range: R) -> Bounds {
        Bounds {
            lo: range.start_bound().cloned(),
            hi: range.end_bound().cloned(),
        }
    }

    /// Whether `v` falls inside the bounds.
    pub fn contains(&self, v: f64) -> bool {
        <Self as RangeBounds<f64>>::contains(self, &v)
    }
}

impl RangeBounds<f64> for Bounds {
    fn start_bound(&self) -> Bound<&f64> {
        self.lo.as_ref()
    }

    fn end_bound(&self) -> Bound<&f64> {
        self.hi.as_ref()
    }
}

impl std::fmt::Display for Bounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.lo {
            Bound::Included(v) => write!(f, "[{v}")?,
            Bound::Excluded(v) => write!(f, "({v}")?,
            Bound::Unbounded => write!(f, "(-inf")?,
        }
        match self.hi {
            Bound::Included(v) => write!(f, ", {v}]"),
            Bound::Excluded(v) => write!(f, ", {v})"),
            Bound::Unbounded => write!(f, ", +inf)"),
        }
    }
}

/// A typed query request, evaluated by the generic `query` entry point
/// of every layer.
///
/// Constructors taking ranges or `&str` exist for every variant so
/// call sites stay close to the old per-flavor methods:
///
/// ```
/// use xvi_index::{Document, IndexConfig, IndexManager, Lookup, XmlType};
///
/// let doc = Document::parse(
///     "<person><name>Arthur</name><age><decades>4</decades>2<years/></age></person>",
/// ).unwrap();
/// let idx = IndexManager::build(&doc, IndexConfig::default());
///
/// // Equality on string values — any node, any path.
/// let hits = idx.query(&doc, &Lookup::equi("Arthur")).unwrap();
/// assert_eq!(hits.len(), 2); // <name> and its text node
///
/// // Range on doubles — the mixed-content <age> concatenates to "42".
/// let hits = idx.query(&doc, &Lookup::range_f64(40.0..=50.0)).unwrap();
/// assert!(hits.iter().any(|&n| doc.name(n) == Some("age")));
///
/// // The same request works against every layer: a typed index that
/// // is not configured reports an error instead of panicking.
/// let err = idx.query(&doc, &Lookup::typed_eq(XmlType::Boolean, 1.0)).unwrap_err();
/// assert!(matches!(err, xvi_index::IndexError::TypeNotIndexed(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Equality on XDM string values (hash probe + verification).
    Equi(String),
    /// Range scan on the double index (the default typed index — the
    /// common case).
    RangeF64(Bounds),
    /// Equality on the typed index for an [`XmlType`] (served as a
    /// degenerate range).
    TypedEq(XmlType, f64),
    /// Range scan on the typed index for an [`XmlType`].
    TypedRange(XmlType, Bounds),
    /// Substring containment over stored values (trigram index,
    /// verified).
    Contains(String),
    /// `*`/`?` wildcard match over stored values (trigram index,
    /// verified).
    Wildcard(String),
    /// A parsed mini-XPath query, planned and evaluated by
    /// [`QueryEngine`](crate::QueryEngine) (with index acceleration
    /// where a predicate lowers to one of the other variants).
    XPath(Query),
}

impl Lookup {
    /// Equality lookup on string values.
    pub fn equi(value: impl Into<String>) -> Lookup {
        Lookup::Equi(value.into())
    }

    /// Range lookup on the double index.
    pub fn range_f64<R: RangeBounds<f64>>(range: R) -> Lookup {
        Lookup::RangeF64(Bounds::from_range(range))
    }

    /// Typed equality lookup (e.g. the paper's `[.//age = 42]` on the
    /// integer index).
    pub fn typed_eq(ty: XmlType, key: f64) -> Lookup {
        Lookup::TypedEq(ty, key)
    }

    /// Typed range lookup.
    pub fn typed_range<R: RangeBounds<f64>>(ty: XmlType, range: R) -> Lookup {
        Lookup::TypedRange(ty, Bounds::from_range(range))
    }

    /// Substring containment lookup.
    pub fn contains(needle: impl Into<String>) -> Lookup {
        Lookup::Contains(needle.into())
    }

    /// Wildcard (`*`/`?`) lookup.
    pub fn wildcard(pattern: impl Into<String>) -> Lookup {
        Lookup::Wildcard(pattern.into())
    }

    /// Parses a mini-XPath string into an [`Lookup::XPath`] request.
    pub fn xpath(query: &str) -> Result<Lookup, IndexError> {
        Ok(Lookup::XPath(crate::query::QueryEngine::parse(query)?))
    }
}

impl std::fmt::Display for Lookup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lookup::Equi(v) => write!(f, "equi({v:?})"),
            Lookup::RangeF64(b) => write!(f, "range(double, {b})"),
            Lookup::TypedEq(ty, k) => write!(f, "eq({}, {k})", ty.name()),
            Lookup::TypedRange(ty, b) => write!(f, "range({}, {b})", ty.name()),
            Lookup::Contains(n) => write!(f, "contains({n:?})"),
            Lookup::Wildcard(p) => write!(f, "wildcard({p:?})"),
            Lookup::XPath(q) => write!(f, "xpath({} steps)", q.steps.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_capture_every_range_shape() {
        assert_eq!(Bounds::from_range(..), Bounds::all());
        assert_eq!(Bounds::from_range(42.0..=42.0), Bounds::eq(42.0));
        let half = Bounds::from_range(1.0..);
        assert!(half.contains(1.0) && !half.contains(0.999));
        let open = Bounds::from_range(1.0..2.0);
        assert!(open.contains(1.5) && !open.contains(2.0));
    }

    #[test]
    fn display_renders_compactly() {
        assert_eq!(Lookup::equi("x").to_string(), "equi(\"x\")");
        assert_eq!(
            Lookup::range_f64(1.0..=2.0).to_string(),
            "range(double, [1, 2])"
        );
        assert_eq!(
            Lookup::typed_eq(XmlType::Integer, 17.0).to_string(),
            "eq(integer, 17)"
        );
        assert_eq!(Bounds::all().to_string(), "(-inf, +inf)");
    }

    #[test]
    fn xpath_constructor_parses() {
        assert!(Lookup::xpath("//person[.//age = 42]").is_ok());
        assert!(Lookup::xpath("not a query").is_err());
    }
}
