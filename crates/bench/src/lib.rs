//! # xvi-bench — the experiment harness
//!
//! Binaries regenerating the paper's evaluation (§6):
//!
//! | target | paper content | run with |
//! |--------|---------------|----------|
//! | `table1` | dataset statistics | `cargo run -p xvi-bench --release --bin table1` |
//! | `fig9`   | index creation time & storage overhead | `… --bin fig9` |
//! | `fig10`  | update time vs. number of updated nodes | `… --bin fig10` |
//! | `fig11`  | hash stability (collision distribution) | `… --bin fig11` |
//! | `concurrency` | index-service throughput vs. threads × group-commit limit | `… --bin concurrency` |
//!
//! Document sizes default to ≈ 1/16 of the paper's (laptop scale); set
//! `XVI_SCALE` (permille of that default, e.g. `XVI_SCALE=100` for a
//! 10× smaller smoke run) and `XVI_REPS` to trade fidelity for time.
//!
//! Criterion microbenches (`cargo bench -p xvi-bench`) cover the
//! substrate ablations: `H`/`C` throughput, SCT probe vs. hash
//! combine, B+tree ops, index creation/update, and the
//! lookup-vs-scan crossover.

use std::time::{Duration, Instant};

use xvi_datagen::Dataset;
use xvi_xml::Document;

pub mod experiments;

/// Scale in permille of the default dataset size (`XVI_SCALE`).
pub fn scale_permille() -> u32 {
    std::env::var("XVI_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Repetitions for timed measurements (`XVI_REPS`; the paper used 20).
pub fn reps() -> usize {
    std::env::var("XVI_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Where experiment runs should dump their final metrics-registry
/// snapshot, if anywhere (`XVI_METRICS_OUT`, also set by the
/// `concurrency` binary's `--metrics-out` flag). Honoured by the
/// service-driving experiments (currently the `serve` sweep).
pub fn metrics_out() -> Option<String> {
    std::env::var("XVI_METRICS_OUT").ok()
}

/// Writes a registry snapshot as a Prometheus text exposition to
/// `path` and as a JSON document to `<path>.json`.
pub fn write_metrics_snapshot(snap: &xvi_obs::RegistrySnapshot, path: &str) -> std::io::Result<()> {
    std::fs::write(path, snap.to_prometheus())?;
    std::fs::write(format!("{path}.json"), snap.to_json())?;
    Ok(())
}

/// Generates and shreds one dataset, returning `(xml, doc)`.
pub fn load(ds: Dataset, permille: u32) -> (String, Document) {
    let xml = ds.generate(permille);
    let doc = Document::parse(&xml).unwrap_or_else(|e| panic!("{}: {e}", ds.name()));
    (xml, doc)
}

/// Times a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Mean duration of `reps` runs of `f` (each run gets the rep index).
pub fn time_mean(reps: usize, mut f: impl FnMut(usize)) -> Duration {
    let mut total = Duration::ZERO;
    for i in 0..reps {
        let start = Instant::now();
        f(i);
        total += start.elapsed();
    }
    total / reps as u32
}

/// Best-of-`reps` timing: runs `f` `reps` times and returns the
/// fastest run. More robust than the mean on noisy shared machines —
/// external interference only ever adds time, so the minimum is the
/// closest observation to the code's true cost.
pub fn time_min(reps: usize, mut f: impl FnMut(usize)) -> Duration {
    let mut best = Duration::MAX;
    for i in 0..reps {
        let start = Instant::now();
        f(i);
        best = best.min(start.elapsed());
    }
    best
}

/// Timing for an A/B comparison, with the two sides interleaved
/// (`a`, `b`, `a`, `b`, …) rather than run back to back. Caches,
/// TLBs, and frequency state keep drifting across a long measurement;
/// running all of `a` before all of `b` folds that drift into the
/// comparison (an A/A test on this harness showed a 2× bias from
/// ordering alone). Interleaving gives both sides the same
/// environment in every rep; returns `(best_a, best_b, ratio)` where
/// the durations are per-side minima and `ratio` is the *median* of
/// the per-rep `b/a` ratios — the minima are the closest observations
/// to each side's true cost, while the median ratio is robust to the
/// heavy-tailed interference bursts a shared machine injects into
/// individual reps.
pub fn time_min_pair(
    reps: usize,
    mut a: impl FnMut(usize),
    mut b: impl FnMut(usize),
) -> (Duration, Duration, f64) {
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    let mut ratios = Vec::with_capacity(reps);
    for i in 0..reps {
        let start = Instant::now();
        a(i);
        let ta = start.elapsed();
        best_a = best_a.min(ta);
        let start = Instant::now();
        b(i);
        let tb = start.elapsed();
        best_b = best_b.min(tb);
        ratios.push(tb.as_secs_f64() / ta.as_secs_f64().max(f64::MIN_POSITIVE));
    }
    ratios.sort_by(|x, y| x.total_cmp(y));
    (best_a, best_b, ratios[ratios.len() / 2])
}

/// Fixed-width table printer for the experiment binaries.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table and prints the header row.
    pub fn new(headers: &[(&str, usize)]) -> Table {
        let widths: Vec<usize> = headers.iter().map(|(_, w)| *w).collect();
        let t = Table { widths };
        t.row(
            &headers
                .iter()
                .map(|(h, _)| h.to_string())
                .collect::<Vec<_>>(),
        );
        println!(
            "{}",
            "-".repeat(t.widths.iter().sum::<usize>() + t.widths.len() * 2)
        );
        t
    }

    /// Prints one row; cells beyond the declared columns are ignored.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(self.widths.len()) {
            line.push_str(&format!("{:>w$}  ", cell, w = self.widths[i]));
        }
        println!("{}", line.trim_end());
    }
}

/// Formats a byte count as MB with one decimal.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration as integer milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

/// Formats `part / whole` as a percentage with one decimal.
pub fn pct(part: usize, whole: usize) -> String {
    if whole == 0 {
        return "0.0%".into();
    }
    format!("{:.1}%", 100.0 * part as f64 / whole as f64)
}
