//! The paper's evaluation (§6) as callable functions.
//!
//! Each `run_*` takes its scale explicitly so the smoke test
//! (`tests/bench_smoke.rs` at the workspace root) can drive the exact
//! binary logic at permille 1 without touching process environment;
//! the `table1` / `fig9` / `fig10` / `fig11` binaries are thin wrappers
//! passing `scale_permille()` / `reps()`.

use std::sync::{Arc, Barrier};

use xvi_datagen::{ConcurrentConfig, ConcurrentWorkload, Dataset, UpdateWorkload, WorkloadOp};
use xvi_fsm::{analyzer, XmlType};
use xvi_hash::collisions::CollisionHistogram;
use xvi_index::{
    IndexConfig, IndexManager, IndexService, Lookup, Plan, QueryEngine, ServiceConfig,
};
use xvi_xml::{Document, NodeKind};

use crate::{
    load, mb, metrics_out, ms, pct, time, time_mean, time_min_pair, write_metrics_snapshot, Table,
};

/// Table 1: statistics about the data sets.
///
/// Columns mirror the paper: serialized size, total nodes, text nodes
/// (with share), text nodes holding a (potential) valid double lexical
/// representation (with share), and the number of *non-leaf* nodes
/// whose string value is a complete double — the mixed-content rarity
/// that motivates the semantics-respecting design.
pub fn run_table1(permille: u32) {
    println!("Table 1 — dataset statistics (scale {permille}‰ of default ≈ paper/16)\n");
    let table = Table::new(&[
        ("Data", 8),
        ("Size MB", 8),
        ("Total Nodes", 12),
        ("Text Nodes", 12),
        ("%", 6),
        ("%struct", 8),
        ("Double Values", 14),
        ("%", 6),
        ("non-leaf", 9),
    ]);

    let an = analyzer(XmlType::Double);
    for ds in Dataset::paper_suite() {
        let (xml, doc) = load(ds, permille);
        let stats = doc.stats();

        let mut double_texts = 0usize;
        let mut non_leaf_doubles = 0usize;
        for n in doc.descendants(doc.document_node()) {
            match doc.kind(n) {
                NodeKind::Text(t)
                    // The paper counts text nodes with a *(potential)*
                    // valid double lexical representation.
                    if an.state_of(t).is_some() =>
                {
                    double_texts += 1;
                }
                NodeKind::Element(_) if doc.children(n).count() > 1 => {
                    let sv = doc.string_value(n);
                    let complete = an
                        .state_of(&sv)
                        .map(|s| an.is_complete(s))
                        .unwrap_or(false);
                    if complete {
                        non_leaf_doubles += 1;
                    }
                }
                _ => {}
            }
        }

        table.row(&[
            ds.name(),
            mb(xml.len()),
            stats.total_nodes.to_string(),
            stats.text_nodes.to_string(),
            pct(stats.text_nodes, stats.total_nodes),
            pct(stats.text_nodes, stats.total_nodes - stats.attribute_nodes),
            double_texts.to_string(),
            pct(double_texts, stats.total_nodes),
            non_leaf_doubles.to_string(),
        ]);
    }
    println!(
        "\nShape targets from the paper: text nodes 56-66% of total (the paper's\n\
         node counts exclude attribute nodes — see the %struct column); double\n\
         values 0.1-10% depending on dataset; non-leaf doubles 0 except DBLP (21)\n\
         and PSD (902) — rare but present, hence the semantics-respecting design."
    );
}

/// Figure 9: index creation time and storage overhead.
///
/// Top half — time: shred (parse) time per dataset vs. the extra time
/// to create the string index and the double index. Bottom half —
/// storage: database (document store) size vs. index sizes.
pub fn run_fig9(permille: u32, reps: usize) {
    println!("Figure 9 — creation time and storage overhead (scale {permille}‰, {reps} reps)\n");

    let table = Table::new(&[
        ("Data", 8),
        ("shred ms", 9),
        ("string ms", 10),
        ("str ovh", 8),
        ("double ms", 10),
        ("dbl ovh", 8),
        ("DB MB", 7),
        ("str MB", 7),
        ("str ovh", 8),
        ("dbl MB", 7),
        ("dbl ovh", 8),
    ]);

    for ds in Dataset::paper_suite() {
        let (xml, doc) = load(ds, permille);

        // Shred time: parse the XML text into the document store.
        let shred = time_mean(reps, |_| {
            let d = Document::parse(&xml).unwrap();
            std::hint::black_box(d);
        });

        // Index creation times, each index family on its own, matching
        // the paper's separate "string index time" / "double index
        // time" bars.
        let string_t = time_mean(reps, |_| {
            let idx = IndexManager::build(&doc, IndexConfig::string_only());
            std::hint::black_box(idx);
        });
        let double_t = time_mean(reps, |_| {
            let idx = IndexManager::build(&doc, IndexConfig::typed_only(&[XmlType::Double]));
            std::hint::black_box(idx);
        });

        // Storage.
        let string_idx = IndexManager::build(&doc, IndexConfig::string_only());
        let double_idx = IndexManager::build(&doc, IndexConfig::typed_only(&[XmlType::Double]));
        let db_bytes = doc.stats().arena_bytes;
        let str_bytes = string_idx.stats().string_bytes;
        let dbl_bytes = double_idx.stats().typed[0].bytes;

        let ratio = |t: std::time::Duration, base: std::time::Duration| -> String {
            format!("{:.1}%", 100.0 * t.as_secs_f64() / base.as_secs_f64())
        };

        table.row(&[
            ds.name(),
            ms(shred),
            ms(string_t),
            ratio(string_t, shred),
            ms(double_t),
            ratio(double_t, shred),
            mb(db_bytes),
            mb(str_bytes),
            pct(str_bytes, db_bytes),
            mb(dbl_bytes),
            pct(dbl_bytes, db_bytes),
        ]);
    }

    println!(
        "\nPaper shape: string-index creation ≤ ~10% of shred time, double ≤ ~2%\n\
         (SCT array probe beats hash combination); string-index storage 10-20%\n\
         of DB size, double-index storage 2-3% (1-byte states, few valid doubles)."
    );
}

/// Update batch sizes timed by Figure 10 (clamped to the document's
/// text-node population at small scales).
pub const FIG10_BATCHES: &[usize] = &[1, 10, 100, 1_000, 10_000, 100_000];
const FIG10_BATCH_LABELS: &[&str] = &["1", "10", "100", "1000", "10000", "100000"];

/// Figure 10: update time vs. number of updated nodes, with the
/// full-rebuild alternative alongside as an ablation.
pub fn run_fig10(permille: u32, reps: usize) {
    println!(
        "Figure 10 — update time (ms) vs. number of updated nodes \
         (scale {permille}‰, {reps} reps, mean)\n"
    );

    for (config, label) in [
        (IndexConfig::string_only(), "string index"),
        (IndexConfig::typed_only(&[XmlType::Double]), "double index"),
    ] {
        println!("== {label} ==");
        debug_assert_eq!(FIG10_BATCHES.len(), FIG10_BATCH_LABELS.len());
        let mut headers = vec![("Data", 8)];
        for &l in FIG10_BATCH_LABELS {
            headers.push((l, 9));
        }
        headers.push(("rebuild", 10));
        let table = Table::new(&headers);

        for ds in Dataset::paper_suite() {
            let (_, mut doc) = load(ds, permille);
            let mut idx = IndexManager::build(&doc, config.clone());
            let mut cells = vec![ds.name()];
            for (i, &batch) in FIG10_BATCHES.iter().enumerate() {
                let mut total = std::time::Duration::ZERO;
                for r in 0..reps {
                    let w = UpdateWorkload::generate(&doc, batch, (i * 1000 + r) as u64);
                    let (_, t) = time(|| {
                        idx.update_values(&mut doc, w.as_pairs()).unwrap();
                    });
                    total += t;
                }
                cells.push(ms(total / reps as u32));
            }
            let (_, rebuild) = time(|| {
                let fresh = IndexManager::build(&doc, config.clone());
                std::hint::black_box(fresh);
            });
            cells.push(ms(rebuild));
            table.row(&cells);
        }
        println!();
    }

    println!(
        "Paper shape: sub-linear growth in the batch size; small batches in\n\
         single-digit milliseconds; the double index slightly cheaper than the\n\
         string index; incremental maintenance far below the rebuild column\n\
         until the batch approaches the document size."
    );
}

/// Figure 11: hash stability — the distribution of "how many distinct
/// strings share one hash value" over text and attribute values.
pub fn run_fig11(permille: u32) {
    println!("Figure 11 — hash stability (scale {permille}‰)\n");

    let table = Table::new(&[
        ("Data", 8),
        ("distinct", 10),
        ("hashes", 10),
        ("colliding", 10),
        ("rate", 7),
        ("max k", 6),
        ("k=2", 8),
        ("k=3", 8),
        ("k>=4", 8),
    ]);

    for ds in Dataset::paper_suite() {
        let (_, doc) = load(ds, permille);
        let mut hist = CollisionHistogram::new();
        for n in doc.descendants(doc.document_node()) {
            match doc.kind(n) {
                NodeKind::Text(t) => hist.observe(t),
                NodeKind::Element(_) => {
                    for a in doc.attributes(n) {
                        if let NodeKind::Attribute { value, .. } = doc.kind(a) {
                            hist.observe(value);
                        }
                    }
                }
                _ => {}
            }
        }
        let dist = hist.distribution();
        let k2 = dist.get(&2).copied().unwrap_or(0);
        let k3 = dist.get(&3).copied().unwrap_or(0);
        let k4plus: u64 = dist.iter().filter(|(k, _)| **k >= 4).map(|(_, v)| *v).sum();
        table.row(&[
            ds.name(),
            hist.distinct_strings().to_string(),
            hist.distinct_hashes().to_string(),
            hist.colliding_strings().to_string(),
            format!("{:.2}%", hist.collision_rate() * 100.0),
            hist.max_multiplicity().to_string(),
            k2.to_string(),
            k3.to_string(),
            k4plus.to_string(),
        ]);
    }

    println!(
        "\nPaper shape: collision rate < 1% on most datasets, < 10% on the\n\
         large/URL-heavy ones; the Wiki tail (k up to 9) comes from URLs whose\n\
         distinguishing characters repeat every 27 positions, cancelling out in\n\
         the circular XOR."
    );
}

/// Thread counts swept by the concurrency experiment.
pub const CONC_THREADS: &[usize] = &[1, 2, 4, 8];
/// Group-commit drain limits swept by the concurrency experiment.
pub const CONC_GROUPS: &[usize] = &[1, 8, 64];

/// Concurrency experiment: index-service throughput vs. thread count,
/// for several group-commit batch-size limits.
///
/// The service hosts the paper's eight datasets as eight documents; a
/// zipf-skewed mixed reader/writer workload is split round-robin over
/// the worker threads, which hammer the service behind a start
/// barrier. Because commits commute (§5.1), the run's final state is
/// deterministic and every cell is checked for the expected commit
/// count; at tiny scales the maintained indices are also verified
/// against a fresh rebuild.
pub fn run_concurrency(permille: u32, reps: usize) {
    println!(
        "Concurrency — service throughput, ops/s vs. threads × group-commit \
         limit (scale {permille}‰, {reps} reps)\n"
    );

    // Base documents, parsed once; each cell re-registers clones so
    // every configuration starts from identical state.
    let base: Vec<(String, Document)> = Dataset::paper_suite()
        .into_iter()
        .enumerate()
        .map(|(i, ds)| (format!("d{i}"), load(ds, permille).1))
        .collect();
    let docs: Vec<Document> = base.iter().map(|(_, d)| d.clone()).collect();

    let ops = (2 * permille as usize).clamp(240, 4_000);
    let workload_cfg = ConcurrentConfig {
        ops,
        write_permille: 200,
        writes_per_txn: 4,
        zipf_theta: 0.99,
    };

    let mut headers = vec![("Threads", 8)];
    let group_labels: Vec<String> = CONC_GROUPS.iter().map(|g| format!("group={g}")).collect();
    for l in &group_labels {
        headers.push((l.as_str(), 10));
    }
    let table = Table::new(&headers);

    for &threads in CONC_THREADS {
        let mut cells = vec![threads.to_string()];
        for &max_group in CONC_GROUPS {
            let mut total = std::time::Duration::ZERO;
            for rep in 0..reps {
                // Setup and verification stay outside the timed span.
                let service = Arc::new(IndexService::new(
                    ServiceConfig::with_shards(8).with_max_group(max_group),
                ));
                for (id, doc) in &base {
                    service.insert_document(id.clone(), doc.clone());
                }
                let workload = ConcurrentWorkload::generate(&docs, &workload_cfg, rep as u64);
                let writes = workload.write_count() as u64;
                let ((), t) = time(|| drive(&service, workload, threads));
                total += t;
                assert_eq!(service.commit_count(), writes, "lost or double commits");
                if permille <= 10 {
                    for (id, _) in &base {
                        service
                            .read(id, |doc, idx| idx.verify_against(doc).unwrap())
                            .unwrap();
                    }
                }
            }
            let mean = total / reps.max(1) as u32;
            let ops_per_s = ops as f64 / mean.as_secs_f64();
            cells.push(format!("{ops_per_s:.0}"));
        }
        table.row(&cells);
    }

    println!(
        "\nExpected shape: read-heavy throughput scales with the thread count\n\
         (snapshots are lock-free); under write contention larger group limits\n\
         help because one copy-on-write publish amortises over the whole queue\n\
         — the payoff of §5.1's commutativity argument at the system level."
    );
}

/// In-flight ticket depths swept by the pipelined concurrency
/// experiment.
pub const PIPELINE_DEPTHS: &[usize] = &[1, 8, 64];

/// Pipelined concurrency experiment: **single-thread** commit
/// throughput vs. the number of in-flight `submit` tickets.
///
/// One writer thread drives a write-only zipf-skewed workload over the
/// paper's eight datasets hosted as eight documents. At depth 1 every
/// commit is `submit().wait()` — the old blocking path, one leader
/// round per transaction. At larger depths the writer keeps a window
/// of tickets open and reaps the oldest only when the window is full,
/// so each leader round drains a whole window and coalesces its
/// batches per document — the §5.1 amortisation without any extra
/// threads. The headline number is the depth-64 over depth-1 speedup
/// (expected ≥ 2× on multi-document workloads).
pub fn run_pipelined(permille: u32, reps: usize) {
    println!(
        "Pipelined concurrency — single-thread commit throughput vs. \
         in-flight ticket depth (scale {permille}‰, {reps} reps)\n"
    );

    let base: Vec<(String, Document)> = Dataset::paper_suite()
        .into_iter()
        .enumerate()
        .map(|(i, ds)| (format!("d{i}"), load(ds, permille).1))
        .collect();
    let docs: Vec<Document> = base.iter().map(|(_, d)| d.clone()).collect();
    let ids: Vec<String> = base.iter().map(|(id, _)| id.clone()).collect();

    let ops = (4 * permille as usize).clamp(400, 8_000);
    // Single-write transactions: the workload where per-commit
    // overhead (one leader round, one ancestor repair, one publish per
    // transaction) dominates — exactly what window-depth amortisation
    // is for.
    let workload_cfg = ConcurrentConfig {
        ops,
        write_permille: 1000,
        writes_per_txn: 1,
        zipf_theta: 0.99,
    };

    let table = Table::new(&[("Depth", 8), ("commits/s", 12), ("vs depth 1", 12)]);
    let mut depth1_rate: Option<f64> = None;
    let mut last_speedup = 0.0f64;
    for &depth in PIPELINE_DEPTHS {
        let mut total = std::time::Duration::ZERO;
        let mut commits = 0u64;
        for rep in 0..reps {
            let service = IndexService::new(ServiceConfig::with_shards(8).with_max_group(64));
            for (id, doc) in &base {
                service.insert_document(id.clone(), doc.clone());
            }
            let workload = ConcurrentWorkload::generate(&docs, &workload_cfg, 7_000 + rep as u64);
            let writes = workload.write_count() as u64;
            let ((), t) = time(|| {
                let mut in_flight = std::collections::VecDeque::with_capacity(depth);
                for op in workload.ops {
                    let WorkloadOp::Write { doc, writes } = op else {
                        continue;
                    };
                    let mut txn = service.begin();
                    for (node, value) in writes {
                        txn.set_value(node, value);
                    }
                    in_flight.push_back(service.submit(&ids[doc], txn));
                    if in_flight.len() >= depth {
                        let ticket = in_flight.pop_front().expect("window is full");
                        ticket.wait().expect("workload writes are valid");
                    }
                }
                for ticket in in_flight {
                    ticket.wait().expect("workload writes are valid");
                }
            });
            total += t;
            commits += writes;
            assert_eq!(service.commit_count(), writes, "lost or double commits");
            if permille <= 10 {
                for id in &ids {
                    service
                        .read(id, |doc, idx| idx.verify_against(doc).unwrap())
                        .unwrap();
                }
            }
        }
        let rate = commits as f64 / total.as_secs_f64();
        let speedup = match depth1_rate {
            None => {
                depth1_rate = Some(rate);
                1.0
            }
            Some(base_rate) => rate / base_rate,
        };
        last_speedup = speedup;
        table.row(&[
            depth.to_string(),
            format!("{rate:.0}"),
            format!("{speedup:.2}x"),
        ]);
    }

    println!(
        "\nDepth-{} speedup over depth 1: {last_speedup:.2}x — target >= 2x on this\n\
         multi-document workload at realistic scales (XVI_SCALE >= 100; tiny\n\
         documents leave little ancestor work to amortise). Deeper windows let\n\
         one leader round drain and coalesce a whole window of batches per\n\
         document — §5.1's amortisation, with zero extra threads.",
        PIPELINE_DEPTHS.last().unwrap()
    );
}

/// Divisors of the base scale swept by the COW experiment — the
/// document-size axis, largest document last.
pub const COW_SIZE_DIVISORS: &[u32] = &[16, 4, 1];
/// Writes per commit in the COW experiment (the touched set).
pub const COW_BATCH: usize = 8;
/// Commit rounds measured per document size (per rep).
const COW_COMMITS: usize = 16;

/// COW publish experiment: copy-on-write publish cost vs. document
/// size, with a reader permanently pinning the current version.
///
/// Every commit round re-pins a snapshot of the latest published
/// version before committing, so the group-commit leader can never
/// update in place — every publish takes the copy-on-write branch,
/// the regime a read-heavy service lives in. Two implementations of
/// that branch are timed over identical workloads:
///
/// * **shared** — the live service path: the paged arenas share every
///   page with the pinned snapshot and the publish detaches only the
///   pages the batch touches, so its cost follows the batch size
///   ([`COW_BATCH`] writes) and stays flat across the document-size
///   sweep;
/// * **deep** — the seed behaviour before structural sharing,
///   reproduced with the `deep_clone` escape hatches: the whole
///   `(Document, IndexManager)` pair is copied per publish, so its
///   cost grows linearly with the document.
///
/// The headline number is the deep/shared ratio on the largest
/// document — ≥ 5× at realistic scales (`XVI_SCALE=100` and up; at
/// tiny smoke scales both paths cost microseconds and the ratio is
/// noise).
pub fn run_cow(permille: u32, reps: usize) {
    println!(
        "COW publish — µs/commit with a pinned snapshot, structural sharing vs. \
         deep clone (scale {permille}‰, {reps} reps, {COW_BATCH} writes/commit)\n"
    );

    let ds = Dataset::XMark(8);
    let table = Table::new(&[
        ("Nodes", 9),
        ("doc MB", 8),
        ("shared µs", 10),
        ("deep µs", 10),
        ("speedup", 8),
    ]);
    let mut last_speedup = 0.0f64;
    for &div in COW_SIZE_DIVISORS {
        let p = (permille / div).max(1);
        let (_, doc) = load(ds, p);
        let nodes = doc.stats().total_nodes;
        let doc_mb = mb(doc.stats().arena_bytes);
        // Workload generation is O(document); keep it out of the
        // timed spans.
        let workloads: Vec<UpdateWorkload> = (0..COW_COMMITS * reps)
            .map(|i| UpdateWorkload::generate(&doc, COW_BATCH, 9_000 + i as u64))
            .collect();
        let commits = workloads.len() as f64;

        // Shared-page behaviour: the real service publish path.
        let service = IndexService::new(ServiceConfig::with_shards(1));
        service.insert_document("d", doc.clone());
        let mut pin = service.snapshot("d").expect("registered above");
        let mut shared_total = std::time::Duration::ZERO;
        for w in &workloads {
            let mut txn = service.begin();
            for (n, v) in w.as_pairs() {
                txn.set_value(n, v);
            }
            let ((), t) = time(|| {
                service
                    .commit("d", txn)
                    .expect("updates target live text nodes");
            });
            shared_total += t;
            // Re-pin the reader on the fresh version so the next
            // publish is copy-on-write again.
            pin = service.snapshot("d").expect("registered above");
        }
        assert_eq!(
            service.commit_count(),
            workloads.len() as u64,
            "lost or double commits"
        );
        if p <= 10 {
            service
                .read("d", |doc, idx| idx.verify_against(doc).unwrap())
                .unwrap();
        }
        drop(pin);

        // Seed deep-clone behaviour over the identical workload.
        let mut cur_doc = doc;
        let mut cur_idx = IndexManager::build(&cur_doc, IndexConfig::default());
        let mut deep_total = std::time::Duration::ZERO;
        for w in &workloads {
            let ((), t) = time(|| {
                let mut d = cur_doc.deep_clone();
                let mut i = cur_idx.deep_clone();
                i.update_values(&mut d, w.as_pairs())
                    .expect("updates target live text nodes");
                (cur_doc, cur_idx) = (d, i);
            });
            deep_total += t;
        }

        let shared_us = shared_total.as_secs_f64() * 1e6 / commits;
        let deep_us = deep_total.as_secs_f64() * 1e6 / commits;
        last_speedup = deep_us / shared_us;
        table.row(&[
            nodes.to_string(),
            doc_mb,
            format!("{shared_us:.1}"),
            format!("{deep_us:.1}"),
            format!("{last_speedup:.1}x"),
        ]);
    }

    // Acceptance pins (not just eyeball): shared leaf columns must not
    // erode page-level structural sharing. These are structural and
    // scale-independent — a fresh clone shares every page, and a point
    // write detaches only the touched root-to-leaf path.
    {
        let t: xvi_btree::BPlusTree<u64, u64> =
            xvi_btree::BPlusTree::from_sorted_iter((0..50_000u64).map(|k| (k, k)));
        let mut c = t.clone();
        let s = c.stats();
        assert_eq!(
            s.shared_pages, s.pages,
            "fresh clone must share every page ({}/{} shared)",
            s.shared_pages, s.pages
        );
        c.insert(50_000, 0);
        let s = c.stats();
        assert!(
            s.shared_pages * 10 >= s.pages * 9,
            "one point write detached too many pages: {}/{} still shared",
            s.shared_pages,
            s.pages
        );
    }
    // The headline deep/shared publish ratio is only meaningful at
    // realistic scales; at smoke scales both paths cost microseconds.
    if permille >= 100 {
        assert!(
            last_speedup >= 5.0,
            "shared-page publish speedup regressed: {last_speedup:.1}x < 5x"
        );
    }

    println!(
        "\nLargest-document speedup of shared-page over deep-clone publishes:\n\
         {last_speedup:.1}x — target >= 5x from XVI_SCALE=100 up (asserted). Expected\n\
         shape: the shared column stays flat across the size sweep (cost follows\n\
         the {COW_BATCH}-write touched set), the deep column grows with the document."
    );
}

/// Divisors of the base scale swept by the WAL experiment — the
/// document-size axis, largest document last.
pub const WAL_SIZE_DIVISORS: &[u32] = &[16, 4, 1];
/// Writes per commit in the WAL experiment (the logged delta).
pub const WAL_BATCH: usize = 8;
/// Commit rounds measured per document size (per rep).
const WAL_COMMITS: usize = 12;

/// WAL durability experiment: durable-commit latency vs. document
/// size, per-shard write-ahead logging vs. per-commit full-image
/// saves.
///
/// Three configurations are timed over identical workloads on a size
/// sweep of the same dataset:
///
/// * **base** — an ephemeral service: the pure in-memory commit
///   (index maintenance grows mildly with tree depth), the floor any
///   durability strategy pays on top of;
/// * **wal** — the service's [`Durability::Wal`] path: the group
///   leader appends the coalesced batch as one framed, checksummed
///   record and issues one fsync before publishing, so the durable
///   *overhead* per commit (`wal − base`, the `+fsync` column) is
///   O([`WAL_BATCH`]-write delta) and should stay ~flat as the
///   document grows (fsync latency dominates and is size-independent);
/// * **image** — the durability story before the WAL: a full
///   `save_catalog` after every commit, whose cost is O(catalog) and
///   grows linearly with the document.
///
/// At tiny scales the WAL run also exercises recovery: the service is
/// dropped mid-life and reopened from its log, and the recovered
/// version count and indices are checked.
///
/// [`Durability::Wal`]: xvi_index::Durability::Wal
pub fn run_wal(permille: u32, reps: usize) {
    println!(
        "WAL — durable-commit µs vs. document size, group-fsync WAL vs. \
         per-commit full-image save (scale {permille}‰, {reps} reps, \
         {WAL_BATCH} writes/commit)\n"
    );

    let ds = Dataset::XMark(8);
    let table = Table::new(&[
        ("Nodes", 9),
        ("doc MB", 8),
        ("base µs", 9),
        ("wal µs", 9),
        ("+fsync µs", 10),
        ("image µs", 10),
        ("speedup", 8),
    ]);
    let scratch = std::env::temp_dir().join(format!("xvi-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Phase 1 — the in-memory baseline and the WAL path, for every
    // document size. The image saves run in a second phase so their
    // hundreds of megabytes of background writeback cannot inflate
    // the tiny WAL fsyncs measured here.
    struct Cell {
        doc: xvi_index::Document,
        workloads: Vec<UpdateWorkload>,
        nodes: usize,
        doc_mb: String,
        base_us: f64,
        wal_us: f64,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for &div in WAL_SIZE_DIVISORS {
        let p = (permille / div).max(1);
        let (_, doc) = load(ds, p);
        let nodes = doc.stats().total_nodes;
        let doc_mb = mb(doc.stats().arena_bytes);
        // Workload generation is O(document); keep it out of the
        // timed spans.
        let workloads: Vec<UpdateWorkload> = (0..WAL_COMMITS * reps)
            .map(|i| UpdateWorkload::generate(&doc, WAL_BATCH, 11_000 + i as u64))
            .collect();
        let commits = workloads.len() as f64;

        // Ephemeral baseline: the pure in-memory commit cost that
        // every durability strategy sits on top of.
        let service = IndexService::new(ServiceConfig::with_shards(1));
        service.insert_document("d", doc.clone());
        let mut base_total = std::time::Duration::ZERO;
        for w in &workloads {
            let mut txn = service.begin();
            for (n, v) in w.as_pairs() {
                txn.set_value(n, v);
            }
            let ((), t) = time(|| {
                service
                    .commit("d", txn)
                    .expect("updates target live text nodes");
            });
            base_total += t;
        }

        // WAL-backed service: one log record + one fsync per commit.
        let wal_dir = scratch.join(format!("wal-{div}"));
        let service = IndexService::new(ServiceConfig::with_shards(1).with_wal(&wal_dir));
        service.insert_document("d", doc.clone());
        let mut wal_total = std::time::Duration::ZERO;
        for w in &workloads {
            let mut txn = service.begin();
            for (n, v) in w.as_pairs() {
                txn.set_value(n, v);
            }
            let ((), t) = time(|| {
                service
                    .commit("d", txn)
                    .expect("updates target live text nodes");
            });
            wal_total += t;
        }
        assert_eq!(
            service.commit_count(),
            workloads.len() as u64,
            "lost or double commits"
        );
        if p <= 10 {
            // Recovery smoke: "crash" (drop) and reopen from the log.
            let version = service.version_of("d");
            drop(service);
            let recovered = IndexService::open(ServiceConfig::with_shards(1).with_wal(&wal_dir))
                .expect("recovery from the WAL directory");
            assert_eq!(recovered.version_of("d"), version, "recovery lost commits");
            recovered
                .read("d", |doc, idx| idx.verify_against(doc).unwrap())
                .unwrap();
        }

        cells.push(Cell {
            doc,
            workloads,
            nodes,
            doc_mb,
            base_us: base_total.as_secs_f64() * 1e6 / commits,
            wal_us: wal_total.as_secs_f64() * 1e6 / commits,
        });
    }

    // Phase 2 — the pre-WAL durability story: a full-image save after
    // every commit.
    let mut first_over_us: Option<f64> = None;
    let mut last_over_us = 0.0f64;
    let mut last_speedup = 0.0f64;
    for (cell, &div) in cells.iter().zip(WAL_SIZE_DIVISORS) {
        let img_dir = scratch.join(format!("img-{div}"));
        let service = IndexService::new(ServiceConfig::with_shards(1));
        service.insert_document("d", cell.doc.clone());
        let mut img_total = std::time::Duration::ZERO;
        for w in &cell.workloads {
            let mut txn = service.begin();
            for (n, v) in w.as_pairs() {
                txn.set_value(n, v);
            }
            let ((), t) = time(|| {
                service
                    .commit("d", txn)
                    .expect("updates target live text nodes");
                service.save_catalog(&img_dir).expect("full-image save");
            });
            img_total += t;
        }

        let img_us = img_total.as_secs_f64() * 1e6 / cell.workloads.len() as f64;
        let over_us = (cell.wal_us - cell.base_us).max(0.0);
        first_over_us.get_or_insert(over_us);
        last_over_us = over_us;
        last_speedup = img_us / cell.wal_us;
        table.row(&[
            cell.nodes.to_string(),
            cell.doc_mb.clone(),
            format!("{:.1}", cell.base_us),
            format!("{:.1}", cell.wal_us),
            format!("{over_us:.1}"),
            format!("{img_us:.1}"),
            format!("{last_speedup:.1}x"),
        ]);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let sweep = WAL_SIZE_DIVISORS[0] / WAL_SIZE_DIVISORS[WAL_SIZE_DIVISORS.len() - 1].max(1);
    let growth = last_over_us / first_over_us.unwrap_or(last_over_us).max(1.0);
    println!(
        "\nWAL durability overhead (+fsync column: durable commit minus the\n\
         in-memory baseline) grew {growth:.1}x across a {sweep}x document-size sweep\n\
         (target: ~flat — the log record is O({WAL_BATCH}-write delta) and the group\n\
         fsync is size-independent), while the full-image column grows with\n\
         the document. Largest-document speedup of the WAL over per-commit\n\
         image saves: {last_speedup:.1}x."
    );
}

/// Multi-predicate XMark queries swept by the planner experiment. The
/// final predicate of each is the *least* selective one — the
/// adversarial ordering for the old last-predicate heuristic.
pub const PLANNER_QUERIES: &[(&str, &str)] = &[
    (
        "age-vs-education",
        "//person[.//age = 42][.//education = \"Graduate School\"]",
    ),
    (
        "age-vs-quantity",
        "//item[.//quantity = 3][.//quantity >= 1]",
    ),
];

/// Planner experiment: cost-based plans vs. the pre-statistics
/// planner on multi-predicate XMark queries.
///
/// The old `QueryEngine::plan` only ever lowered a *lone* final-step
/// predicate — faced with two predicates it scanned outright, so the
/// honest old-vs-new comparison on these queries is the **scan**
/// column. The **last** column additionally isolates the value of
/// cost-based *choice*: it extends the old last-predicate heuristic
/// to multi-predicate queries by forcing the final step's final
/// plannable predicate — which on these queries is the *least*
/// selective one (every XMark person's `<education>` is the literal
/// `"Graduate School"`), the adversarial pick a selectivity-blind
/// planner makes. The cost-based planner ranks every predicate by its
/// statistics estimate ([`IndexManager::estimate`]) and probes the
/// most selective one instead. Three timings per query:
///
/// * **cost** — the plan [`QueryEngine::plan`] actually picks;
/// * **last** — the last-predicate heuristic extended to
///   multi-predicate queries (forced, selectivity-blind);
/// * **scan** — the old planner's actual behavior on these queries,
///   and the no-index baseline.
///
/// The headline number is the cost-over-last speedup on the first
/// query — target ≥ 2× from `XVI_SCALE=100` up (tiny documents leave
/// too few candidates for the plans to differ measurably); the
/// cost-over-scan column is the speedup over the shipped old
/// behavior. All three evaluations are checked for identical results
/// at every scale.
pub fn run_planner(permille: u32, reps: usize) {
    println!(
        "Planner — cost-based vs. last-predicate plans on multi-predicate \
         XMark queries (scale {permille}‰, {reps} reps)\n"
    );

    let (_, doc) = load(Dataset::XMark(1), permille);
    let idx = IndexManager::build(&doc, IndexConfig::default());

    let table = Table::new(&[
        ("Query", 18),
        ("plan", 11),
        ("est/actual", 12),
        ("cost ms", 9),
        ("last ms", 9),
        ("scan ms", 9),
        ("vs last", 8),
        ("vs scan", 8),
    ]);

    let mut headline = 0.0f64;
    for (i, (name, query_str)) in PLANNER_QUERIES.iter().enumerate() {
        let query = QueryEngine::parse(query_str).expect("planner queries parse");
        let probes = QueryEngine::candidate_probes(&idx, &query);
        assert!(
            probes.len() >= 2,
            "{name}: both predicates must be plannable"
        );

        let cost_plan = QueryEngine::plan(&idx, &query);
        // The old heuristic: the final step's final plannable
        // predicate, selectivity unseen.
        let last_probe = probes
            .iter()
            .max_by_key(|p| (p.step, p.pred))
            .expect("non-empty")
            .clone();
        let last_plan = Plan::Index(last_probe.clone());

        let cost_result = QueryEngine::evaluate_with_plan(&doc, &idx, &query, &cost_plan);
        assert_eq!(
            cost_result,
            QueryEngine::evaluate_with_plan(&doc, &idx, &query, &last_plan),
            "{name}: plans disagree"
        );
        assert_eq!(
            cost_result,
            QueryEngine::evaluate_scan(&doc, &query),
            "{name}: index plans disagree with the scan"
        );

        let cost_t = time_mean(reps, |_| {
            std::hint::black_box(QueryEngine::evaluate_with_plan(
                &doc, &idx, &query, &cost_plan,
            ));
        });
        let last_t = time_mean(reps, |_| {
            std::hint::black_box(QueryEngine::evaluate_with_plan(
                &doc, &idx, &query, &last_plan,
            ));
        });
        let scan_t = time_mean(reps, |_| {
            std::hint::black_box(QueryEngine::evaluate_scan(&doc, &query));
        });

        let vs_last = last_t.as_secs_f64() / cost_t.as_secs_f64();
        let vs_scan = scan_t.as_secs_f64() / cost_t.as_secs_f64();
        if i == 0 {
            headline = vs_last;
        }
        let chosen = match &cost_plan {
            Plan::Index(p) => {
                let actual = idx.query(&doc, &p.lookup).expect("plannable").len();
                (
                    format!("probe s{}", p.step + 1),
                    format!("{}/{}", p.estimate.estimate, actual),
                )
            }
            Plan::Intersect(a, _) => {
                let actual = idx.query(&doc, &a.lookup).expect("plannable").len();
                (
                    "intersect".to_string(),
                    format!("{}/{}", a.estimate.estimate, actual),
                )
            }
            Plan::Scan => ("scan".to_string(), "-".to_string()),
        };
        table.row(&[
            (*name).to_string(),
            chosen.0,
            chosen.1,
            ms(cost_t),
            ms(last_t),
            ms(scan_t),
            format!("{vs_last:.2}x"),
            format!("{vs_scan:.2}x"),
        ]);
    }

    println!(
        "\nHeadline (first query, cost-based over forced last-predicate):\n\
         {headline:.2}x — target >= 2x from XVI_SCALE=100 up. The last predicate\n\
         of each query matches (nearly) every person or item, so the\n\
         selectivity-blind pick probes and reverse-matches the fattest candidate\n\
         set; the statistics-ranked plan probes the selective predicate instead.\n\
         (The pre-statistics planner scanned outright on any multi-predicate\n\
         query, so `vs scan` is the speedup over the shipped old behavior.)"
    );
}

/// Exact aggregates from the monoid summaries: `count_range` against
/// the histogram estimate and the full index scan, on XMark range and
/// equality probes of varying selectivity.
///
/// Every exact count is asserted identical to the scan's answer, and
/// the probe counter is asserted within its `2·depth + 1` budget —
/// the benchmark doubles as an end-to-end correctness gate for the
/// summary maintenance under a real document's tree shapes.
pub fn run_aggregates(permille: u32, reps: usize) {
    println!(
        "Aggregates — exact count_range (monoid summaries) vs. histogram \
         estimate vs. full scan (scale {permille}‰, {reps} reps)\n"
    );

    let (_, doc) = load(Dataset::XMark(1), permille);
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let typed = idx.typed_index(XmlType::Double).expect("double index");
    let string = idx.string_index().expect("string index");
    let depth = typed.value_tree_stats().depth;

    // Range probes from near-everything down to near-nothing, plus two
    // equality probes (a common value and an absent one).
    let ranges: &[(&str, f64, f64)] = &[
        ("range all", f64::NEG_INFINITY, f64::INFINITY),
        ("range wide", 0.0, 10_000.0),
        ("range mid", 50.0, 500.0),
        ("range narrow", 100.0, 102.5),
        ("range empty", 9e15, 9.1e15),
    ];

    let table = Table::new(&[
        ("Probe", 14),
        ("answer", 10),
        ("hist est", 10),
        ("probes", 8),
        ("exact µs", 10),
        ("hist µs", 10),
        ("scan µs", 10),
        ("vs scan", 9),
    ]);

    let us = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e6);
    let mut headline = 0.0f64;

    for (i, &(name, lo, hi)) in ranges.iter().enumerate() {
        let bounds = xvi_index::Bounds::from_range(lo..=hi);
        let truth = typed.range(lo..=hi).len();
        let (exact, probes) = typed.count_range_probed(&bounds);
        assert_eq!(exact, truth, "{name}: exact count disagrees with scan");
        assert!(
            probes <= 2 * depth + 1,
            "{name}: {probes} probes exceeds 2·{depth}+1"
        );
        let hist = typed.histogram_estimate_range(&bounds);
        assert!(
            hist.lower <= truth && truth <= hist.upper,
            "{name}: histogram bounds [{}, {}] miss {truth}",
            hist.lower,
            hist.upper
        );

        let exact_t = time_mean(reps, |_| {
            std::hint::black_box(typed.estimate_range(&bounds));
        });
        let hist_t = time_mean(reps, |_| {
            std::hint::black_box(typed.histogram_estimate_range(&bounds));
        });
        let scan_t = time_mean(reps, |_| {
            std::hint::black_box(typed.range(lo..=hi).len());
        });
        let vs_scan = scan_t.as_secs_f64() / exact_t.as_secs_f64();
        if i == 0 {
            headline = vs_scan;
        }
        table.row(&[
            name.to_string(),
            exact.to_string(),
            hist.estimate.to_string(),
            probes.to_string(),
            us(exact_t),
            us(hist_t),
            us(scan_t),
            format!("{vs_scan:.1}x"),
        ]);
    }

    // Equality probes against the string tree.
    let numbers = string.len();
    for (name, value) in [("equi common", "1"), ("equi absent", "no such value")] {
        let hash = xvi_hash::hash_str(value);
        let truth = string.candidates(hash).len();
        let exact = string.estimate_equi(hash);
        assert_eq!(exact.estimate, truth, "{name}: exact equi count diverged");
        assert_eq!((exact.lower, exact.upper), (truth, truth));
        let hist = string.histogram_estimate_equi(hash);
        assert!(
            hist.lower <= truth && truth <= hist.upper,
            "{name}: histogram bounds miss the truth"
        );

        let exact_t = time_mean(reps, |_| {
            std::hint::black_box(string.estimate_equi(hash));
        });
        let hist_t = time_mean(reps, |_| {
            std::hint::black_box(string.histogram_estimate_equi(hash));
        });
        let scan_t = time_mean(reps, |_| {
            std::hint::black_box(string.candidates(hash).len());
        });
        table.row(&[
            name.to_string(),
            exact.estimate.to_string(),
            hist.estimate.to_string(),
            "-".to_string(),
            us(exact_t),
            us(hist_t),
            us(scan_t),
            format!("{:.1}x", scan_t.as_secs_f64() / exact_t.as_secs_f64()),
        ]);
    }

    println!(
        "\nHeadline (widest range, exact count over materialised scan):\n\
         {headline:.1}x on {numbers} indexed strings — the summary walk visits\n\
         at most 2·depth+1 = {budget} nodes regardless of how many entries the\n\
         range covers, where the scan's cost is the answer itself. The\n\
         histogram column is the PR 5 estimate the summaries replace for\n\
         tree-backed probes: bounded, but only exact for heavy hitters.",
        budget = 2 * depth + 1
    );
}

/// Executes a workload against the service on `threads` barrier-
/// synchronised worker threads, blocking until all operations finish.
pub fn drive(service: &Arc<IndexService>, workload: ConcurrentWorkload, threads: usize) {
    // Doc-id strings are precomputed so the timed loop does not
    // allocate one per operation.
    let max_doc = workload.ops.iter().map(WorkloadOp::doc).max().unwrap_or(0);
    let ids: Arc<Vec<String>> = Arc::new((0..=max_doc).map(|i| format!("d{i}")).collect());
    let shards = workload.into_shards(threads);
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = shards
        .into_iter()
        .map(|ops| {
            let service = Arc::clone(service);
            let barrier = Arc::clone(&barrier);
            let ids = Arc::clone(&ids);
            std::thread::spawn(move || {
                barrier.wait();
                for op in ops {
                    let id = &ids[op.doc()];
                    match op {
                        WorkloadOp::Write { writes, .. } => {
                            let mut txn = service.begin();
                            for (node, value) in writes {
                                txn.set_value(node, value);
                            }
                            service.commit(id, txn).expect("workload writes are valid");
                        }
                        WorkloadOp::ReadEqui { value, .. } => {
                            let hits = service
                                .read(id, |doc, idx| {
                                    idx.query(doc, &Lookup::equi(&value)).unwrap().len()
                                })
                                .expect("workload documents are registered");
                            std::hint::black_box(hits);
                        }
                        WorkloadOp::ReadRange { lo, hi, .. } => {
                            let hits = service
                                .read(id, |doc, idx| {
                                    idx.query(doc, &Lookup::range_f64(lo..=hi)).unwrap().len()
                                })
                                .expect("workload documents are registered");
                            std::hint::black_box(hits);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }
}

/// Open-loop arrival rates (requests/second) swept by the serving
/// experiment. `u64::MAX` means "submit as fast as possible" — the
/// deliberately-saturating top of the sweep.
pub const SERVE_RATES: &[u64] = &[5_000, 50_000, u64::MAX];

/// Serving experiment: open-loop latency percentiles vs. arrival rate
/// through the `xvi-serve` frontend.
///
/// A generator thread submits a 90/10 query/commit mix from four
/// tenants at a fixed arrival rate **without waiting for completions**
/// (open loop — a closed loop would let the server's backpressure slow
/// the generator down and hide the tail). Each rate gets a fresh
/// server; the reported p50/p99/p999 come from the server's own
/// log-bucketed latency histogram, admission → completion.
///
/// The top "rate" is unbounded: the generator outruns the service, the
/// bounded tenant queues fill, and the server must shed load with
/// typed `Overloaded` rejections while the *admitted* requests' p99
/// stays bounded by the queue depth — which is the whole argument for
/// admission control over unbounded buffering.
pub fn run_serve(permille: u32, reps: usize) {
    use xvi_serve::{Request, Server, ServerConfig};

    println!(
        "Serving — open-loop latency percentiles vs. arrival rate \
         (scale {permille}‰, {reps} reps)\n"
    );

    let base: Vec<(String, Document)> = Dataset::paper_suite()
        .into_iter()
        .enumerate()
        .map(|(i, ds)| (format!("d{i}"), load(ds, permille).1))
        .collect();
    // One writable value node per document, for the commit mix.
    let value_nodes: Vec<xvi_xml::NodeId> = base
        .iter()
        .map(|(_, doc)| {
            doc.descendants_or_self(doc.document_node())
                .find(|&n| doc.kind(n).has_direct_value())
                .expect("generated documents contain text")
        })
        .collect();
    let tenants = ["t0", "t1", "t2", "t3"];
    let ops = (8 * permille as usize).clamp(2_000, 20_000);

    let table = Table::new(&[
        ("Rate req/s", 12),
        ("admitted", 10),
        ("rejected", 10),
        ("p50", 10),
        ("p90", 10),
        ("p99", 10),
        ("p999", 10),
    ]);

    // Registry snapshot of the last completed rep, for `--metrics-out`:
    // by then the counters cover a full saturating sweep step.
    let mut final_snapshot: Option<xvi_obs::RegistrySnapshot> = None;

    for &rate in SERVE_RATES {
        let mut merged: Option<xvi_serve::HistogramSnapshot> = None;
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        for _ in 0..reps.max(1) {
            let service = Arc::new(IndexService::new(ServiceConfig::with_shards(4)));
            for (id, doc) in &base {
                service.insert_document(id.clone(), doc.clone());
            }
            let server = Server::new(
                Arc::clone(&service),
                ServerConfig {
                    workers: 4,
                    max_in_flight: 8,
                    tenant_queue: 64,
                    ..ServerConfig::default()
                },
            );
            let interval = if rate == u64::MAX {
                std::time::Duration::ZERO
            } else {
                std::time::Duration::from_secs_f64(1.0 / rate as f64)
            };
            let start = std::time::Instant::now();
            for i in 0..ops {
                // Open-loop pacing: arrival i fires at start + i·interval
                // regardless of how far behind the server is.
                let target = start + interval * i as u32;
                while std::time::Instant::now() < target {
                    std::hint::spin_loop();
                }
                let (doc_id, _) = &base[i % base.len()];
                let request = if i % 10 == 9 {
                    let mut txn = service.begin();
                    txn.set_value(value_nodes[i % base.len()], format!("v{i}"));
                    Request::Commit {
                        doc: doc_id.clone(),
                        txn,
                    }
                } else {
                    Request::Query {
                        doc: doc_id.clone(),
                        lookup: Lookup::range_f64(10.0..=20.0),
                    }
                };
                // Fire-and-forget: completions are reaped by drain();
                // rejected requests are simply shed, as an open-loop
                // client would.
                let _ = server.submit(tenants[i % tenants.len()], request);
            }
            server.drain();
            let stats = server.stats();
            admitted += stats.admitted;
            rejected += stats.rejected;
            match &mut merged {
                Some(m) => m.merge(&stats.latency),
                None => merged = Some(stats.latency),
            }
            server.shutdown();
            final_snapshot = Some(service.obs().registry.snapshot());
        }
        let hist = merged.expect("at least one rep");
        let rate_label = if rate == u64::MAX {
            "open".to_string()
        } else {
            rate.to_string()
        };
        table.row(&[
            rate_label,
            admitted.to_string(),
            format!(
                "{rejected} ({})",
                pct(rejected as usize, (admitted + rejected) as usize)
            ),
            format!("{:?}", hist.percentile(0.50)),
            format!("{:?}", hist.percentile(0.90)),
            format!("{:?}", hist.percentile(0.99)),
            format!("{:?}", hist.percentile(0.999)),
        ]);
        if rate == u64::MAX {
            // The saturating point of the sweep must actually saturate:
            // bounded queues shed load instead of buffering without
            // limit, and what *was* admitted still completes in
            // queue-bounded time.
            assert!(
                rejected > 0,
                "unbounded arrival rate must overflow the bounded admission queues"
            );
        }
        assert_eq!(
            hist.count(),
            admitted,
            "every admitted request records exactly one latency sample"
        );
    }

    println!(
        "\nExpected shape: below saturation rejections are zero and the tail\n\
         tracks service time; at the open (unbounded) rate the bounded tenant\n\
         queues reject the overflow while the admitted p99 stays bounded by\n\
         queue depth × service time — admission control turns overload into\n\
         typed, retryable feedback instead of unbounded queueing delay."
    );

    if let Some(path) = metrics_out() {
        let snap = final_snapshot.expect("at least one rep ran");
        write_metrics_snapshot(&snap, &path)
            .unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"));
        println!(
            "\nwrote metrics snapshot ({} series) to {path} and {path}.json",
            snap.series_names().len()
        );
    }
}

// ---------------------------------------------------------------------------

/// Tree keys per scale permille in the lookup experiment: the default
/// `XVI_SCALE=1000` probes a million-key tree.
const LOOKUP_KEYS_PER_PERMILLE: usize = 1_000;
/// Entries returned by each short-range probe.
const LOOKUP_RANGE_LEN: u64 = 16;
/// Skew of the zipf probe stream: document popularity for the
/// burst-per-query model of [`zipf_probes`]. 2.0 models the
/// workload's steady state between popularity shifts, where a couple
/// of trending documents absorb almost all queries: at a million-key
/// scale ~83% of query bursts land in the four hottest posting
/// blocks.
///
/// [`zipf_probes`]: xvi_datagen::probes::zipf_probes
const LOOKUP_ZIPF_THETA: f64 = 2.0;

/// Descent fast paths: point and short-range probe latency over
/// uniform / sorted / zipf key streams, branch-cached descents
/// ([`get`]/[`range`]) vs. the cold root-walk baseline
/// ([`get_cold`]/[`range_cold`]).
///
/// Warm and cold answers are asserted identical on a prefix of every
/// stream before anything is timed (the `cache_props` suite covers
/// arbitrary mutation histories). Warm and cold reps are interleaved
/// and the reported speedup is the *median* of the per-rep ratios
/// (see [`time_min_pair`]); the ns columns are per-side minima.
/// Besides the printed table the run writes machine-readable results
/// to `BENCH_lookup.json` in the working directory, so CI accumulates
/// a perf trajectory for future PRs to compare against.
///
/// [`time_min_pair`]: crate::time_min_pair
///
/// Expected shape: sorted and zipf streams resolve almost every probe
/// at or near the cached leaf (≥ 2× over the cold walk at
/// `XVI_SCALE=1000`); uniform probes mostly miss, and the top-down
/// fence verification keeps that miss overhead within ~10% of the
/// cold walk.
///
/// [`get`]: xvi_btree::BPlusTree::get
/// [`range`]: xvi_btree::BPlusTree::range
/// [`get_cold`]: xvi_btree::BPlusTree::get_cold
/// [`range_cold`]: xvi_btree::BPlusTree::range_cold
pub fn run_lookup(permille: u32, reps: usize) {
    use xvi_btree::BPlusTree;
    use xvi_datagen::probes::{sorted_probes, uniform_probes, zipf_probes};

    let n = (permille as usize).max(1) * LOOKUP_KEYS_PER_PERMILLE;
    let point_ops = (n * 2).clamp(4_000, 400_000);
    let range_ops = point_ops / 4;
    println!(
        "Lookup — ns/probe, branch-cached descent vs. cold root walk \
         (scale {permille}‰: {n} keys, {point_ops} point / {range_ops} range \
         probes per stream, {reps} reps)\n"
    );

    // Values are a cheap permutation of the key so the timed loops
    // fold real data.
    let tree: BPlusTree<u64, u64> =
        BPlusTree::from_sorted_iter((0..n as u64).map(|k| (k, k.wrapping_mul(0x9E37_79B9))));

    let streams: [(&str, Vec<usize>); 3] = [
        ("uniform", uniform_probes(n, point_ops, 0xA11CE)),
        ("sorted", sorted_probes(n, point_ops, 0xB0B)),
        ("zipf", zipf_probes(n, point_ops, LOOKUP_ZIPF_THETA, 0xCAFE)),
    ];

    let table = Table::new(&[
        ("Stream", 8),
        ("op", 6),
        ("warm ns", 9),
        ("cold ns", 9),
        ("speedup", 8),
        ("hit %", 7),
    ]);

    let mut json_rows: Vec<String> = Vec::new();
    for (name, probes) in &streams {
        // Differential pass, untimed: the cached path must return
        // byte-identical answers to the cold walk.
        for &k in probes.iter().take(4_000) {
            let k = k as u64;
            assert_eq!(
                tree.get(&k),
                tree.get_cold(&k),
                "{name}: warm/cold point answers diverge at key {k}"
            );
        }
        for &k in probes.iter().take(1_000) {
            let k = k as u64;
            let warm: Vec<(u64, u64)> = tree
                .range(k..k + LOOKUP_RANGE_LEN)
                .map(|(a, b)| (*a, *b))
                .collect();
            let cold: Vec<(u64, u64)> = tree
                .range_cold(k..k + LOOKUP_RANGE_LEN)
                .map(|(a, b)| (*a, *b))
                .collect();
            assert_eq!(
                warm, cold,
                "{name}: warm/cold range answers diverge at key {k}"
            );
        }

        // Untimed warm-up over the full stream so the timed warm and
        // cold loops start from the same CPU-cache state (the first
        // timed loop would otherwise pay every compulsory miss for
        // the tree pages and donate the warmed cache to the second).
        let mut acc = 0u64;
        for &k in probes {
            acc = acc.wrapping_add(*tree.get_cold(&(k as u64)).expect("key present"));
        }
        std::hint::black_box(acc);

        // Point probes, warm and cold interleaved per rep (see
        // [`time_min_pair`]) so cache/TLB drift across the run hits
        // both sides equally. `XVI_LOOKUP_AB=1` turns the warm side
        // into a second cold walk — an A/A run whose ratios should sit
        // at ~1.0; use it to validate the harness on new hardware
        // before trusting any A/B number it prints.
        let ab = std::env::var_os("XVI_LOOKUP_AB").is_some();
        let before = tree.descent_cache_counters();
        let (warm, cold, speedup) = time_min_pair(
            reps,
            |_| {
                let mut acc = 0u64;
                for &k in probes {
                    acc = acc.wrapping_add(if ab {
                        *tree.get_cold(&(k as u64)).expect("key present")
                    } else {
                        *tree.get(&(k as u64)).expect("key present")
                    });
                }
                std::hint::black_box(acc);
            },
            |_| {
                let mut acc = 0u64;
                for &k in probes {
                    acc = acc.wrapping_add(*tree.get_cold(&(k as u64)).expect("key present"));
                }
                std::hint::black_box(acc);
            },
        );
        let after = tree.descent_cache_counters();
        let (hits, partials, misses) = (after.0 - before.0, after.1 - before.1, after.2 - before.2);
        let total = (hits + partials + misses).max(1);
        let hit_pct = 100.0 * (hits + partials) as f64 / total as f64;
        if std::env::var_os("XVI_LOOKUP_DEBUG").is_some() {
            eprintln!("  [{name}] hits={hits} partials={partials} misses={misses}");
        }
        let warm_ns = warm.as_secs_f64() * 1e9 / point_ops as f64;
        let cold_ns = cold.as_secs_f64() * 1e9 / point_ops as f64;
        table.row(&[
            name.to_string(),
            "point".into(),
            format!("{warm_ns:.1}"),
            format!("{cold_ns:.1}"),
            format!("{speedup:.2}x"),
            format!("{hit_pct:.1}"),
        ]);
        json_rows.push(format!(
            "{{\"stream\":\"{name}\",\"op\":\"point\",\"warm_ns\":{warm_ns:.2},\
             \"cold_ns\":{cold_ns:.2},\"speedup\":{speedup:.3},\"hit_pct\":{hit_pct:.2}}}"
        ));

        // Short-range probes over a prefix of the same stream, again
        // interleaved.
        let rprobes = &probes[..range_ops];
        let (warm, cold, speedup) = time_min_pair(
            reps,
            |_| {
                let mut acc = 0u64;
                for &k in rprobes {
                    let k = k as u64;
                    for (_, v) in tree.range(k..k + LOOKUP_RANGE_LEN) {
                        acc = acc.wrapping_add(*v);
                    }
                }
                std::hint::black_box(acc);
            },
            |_| {
                let mut acc = 0u64;
                for &k in rprobes {
                    let k = k as u64;
                    for (_, v) in tree.range_cold(k..k + LOOKUP_RANGE_LEN) {
                        acc = acc.wrapping_add(*v);
                    }
                }
                std::hint::black_box(acc);
            },
        );
        let warm_ns = warm.as_secs_f64() * 1e9 / range_ops as f64;
        let cold_ns = cold.as_secs_f64() * 1e9 / range_ops as f64;
        table.row(&[
            name.to_string(),
            "range".into(),
            format!("{warm_ns:.1}"),
            format!("{cold_ns:.1}"),
            format!("{speedup:.2}x"),
            "-".into(),
        ]);
        json_rows.push(format!(
            "{{\"stream\":\"{name}\",\"op\":\"range\",\"warm_ns\":{warm_ns:.2},\
             \"cold_ns\":{cold_ns:.2},\"speedup\":{speedup:.3}}}"
        ));
    }

    let json = format!(
        "{{\"mode\":\"lookup\",\"scale_permille\":{permille},\"keys\":{n},\
         \"point_probes\":{point_ops},\"range_probes\":{range_ops},\"reps\":{reps},\
         \"results\":[{}]}}\n",
        json_rows.join(",")
    );
    std::fs::write("BENCH_lookup.json", &json).expect("write BENCH_lookup.json");

    println!(
        "\nWrote BENCH_lookup.json. Targets at XVI_SCALE=1000: sorted and zipf\n\
         point probes >= 2x over the cold walk (descents resolve at or near the\n\
         cached leaf), uniform no worse than 0.9x (the top-down fence check\n\
         bounds the miss overhead to one hot node probe)."
    );
}
