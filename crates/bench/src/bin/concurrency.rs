//! Concurrency experiment: index-service throughput vs. thread count
//! and group-commit batch-size limit (see
//! [`xvi_bench::experiments::run_concurrency`]). Pass `pipelined` to
//! run the single-thread pipelined-commit sweep
//! ([`xvi_bench::experiments::run_pipelined`]): in-flight ticket depth
//! vs. commit throughput. Pass `cow` to run the copy-on-write publish
//! sweep ([`xvi_bench::experiments::run_cow`]): publish µs/commit with
//! a pinned snapshot, shared-page vs. deep-clone behaviour across
//! document sizes. Pass `planner` to run the cost-based-planning sweep
//! ([`xvi_bench::experiments::run_planner`]): cost-based vs.
//! last-predicate plans on multi-predicate XMark queries. Pass `wal`
//! to run the durability sweep ([`xvi_bench::experiments::run_wal`]):
//! durable-commit latency vs. document size, group-fsync WAL vs.
//! per-commit full-image saves. Pass `aggregates` to run the exact-
//! aggregate sweep ([`xvi_bench::experiments::run_aggregates`]):
//! monoid-summary `count_range` vs. histogram estimate vs. full scan,
//! with identical answers asserted. Pass `serve` to run the open-loop
//! serving sweep ([`xvi_bench::experiments::run_serve`]): latency
//! percentiles (p50/p99/p999) vs. arrival rate through the
//! `xvi-serve` frontend, with typed load-shedding above saturation.
//! Pass `lookup` to run the descent fast-path sweep
//! ([`xvi_bench::experiments::run_lookup`]): point and short-range
//! probe latency over uniform/sorted/zipf streams, branch-cached
//! descents vs. the cold root-walk baseline, with machine-readable
//! results written to `BENCH_lookup.json`.
//!
//! `--metrics-out <path>` (or `XVI_METRICS_OUT=<path>`) makes the
//! service-driving sweeps dump their final metrics-registry snapshot
//! as a Prometheus exposition to `<path>` and JSON to `<path>.json`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = String::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics-out" {
            match args.get(i + 1) {
                Some(path) => std::env::set_var("XVI_METRICS_OUT", path),
                None => {
                    eprintln!("--metrics-out needs a path");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            mode = args[i].clone();
            i += 1;
        }
    }
    let (permille, reps) = (xvi_bench::scale_permille(), xvi_bench::reps());
    match mode.as_str() {
        "" => xvi_bench::experiments::run_concurrency(permille, reps),
        "pipelined" => xvi_bench::experiments::run_pipelined(permille, reps),
        "cow" => xvi_bench::experiments::run_cow(permille, reps),
        "planner" => xvi_bench::experiments::run_planner(permille, reps),
        "wal" => xvi_bench::experiments::run_wal(permille, reps),
        "aggregates" => xvi_bench::experiments::run_aggregates(permille, reps),
        "serve" => xvi_bench::experiments::run_serve(permille, reps),
        "lookup" => xvi_bench::experiments::run_lookup(permille, reps),
        other => {
            eprintln!(
                "unknown mode `{other}` (expected nothing, `pipelined`, `cow`, `planner`, \
                 `wal`, `aggregates`, `serve`, or `lookup`)"
            );
            std::process::exit(2);
        }
    }
}
