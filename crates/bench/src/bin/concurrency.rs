//! Concurrency experiment: index-service throughput vs. thread count
//! and group-commit batch-size limit (see
//! [`xvi_bench::experiments::run_concurrency`]).

fn main() {
    xvi_bench::experiments::run_concurrency(xvi_bench::scale_permille(), xvi_bench::reps());
}
