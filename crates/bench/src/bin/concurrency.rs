//! Concurrency experiment: index-service throughput vs. thread count
//! and group-commit batch-size limit (see
//! [`xvi_bench::experiments::run_concurrency`]). Pass `pipelined` to
//! run the single-thread pipelined-commit sweep
//! ([`xvi_bench::experiments::run_pipelined`]): in-flight ticket depth
//! vs. commit throughput.

fn main() {
    let pipelined = std::env::args().any(|a| a == "pipelined");
    if pipelined {
        xvi_bench::experiments::run_pipelined(xvi_bench::scale_permille(), xvi_bench::reps());
    } else {
        xvi_bench::experiments::run_concurrency(xvi_bench::scale_permille(), xvi_bench::reps());
    }
}
