//! Figure 11: hash stability (collision distribution).
//!
//! Thin wrapper over [`xvi_bench::experiments::run_fig11`]; scale via
//! `XVI_SCALE`.

use xvi_bench::{experiments, scale_permille};

fn main() {
    experiments::run_fig11(scale_permille());
}
