//! Figure 11: hash stability.
//!
//! For every dataset, the distribution of "how many distinct strings
//! share one hash value", over the distinct string values of all text
//! and attribute nodes. The paper: almost all strings hash uniquely,
//! < 1% collide on most datasets, < 10% even on PSD/Wiki, with the
//! Wiki tail reaching 9 distinct strings per hash value because of
//! URL families whose distinguishing characters repeat 27 positions
//! apart (the period of `H`'s write offset).

use xvi_bench::{load, scale_permille, Table};
use xvi_datagen::Dataset;
use xvi_hash::collisions::CollisionHistogram;
use xvi_xml::NodeKind;

fn main() {
    let permille = scale_permille();
    println!("Figure 11 — hash stability (scale {permille}‰)\n");

    let table = Table::new(&[
        ("Data", 8),
        ("distinct", 10),
        ("hashes", 10),
        ("colliding", 10),
        ("rate", 7),
        ("max k", 6),
        ("k=2", 8),
        ("k=3", 8),
        ("k>=4", 8),
    ]);

    for ds in Dataset::paper_suite() {
        let (_, doc) = load(ds, permille);
        let mut hist = CollisionHistogram::new();
        for n in doc.descendants(doc.document_node()) {
            match doc.kind(n) {
                NodeKind::Text(t) => hist.observe(t),
                NodeKind::Element(_) => {
                    for a in doc.attributes(n) {
                        if let NodeKind::Attribute { value, .. } = doc.kind(a) {
                            hist.observe(value);
                        }
                    }
                }
                _ => {}
            }
        }
        let dist = hist.distribution();
        let k2 = dist.get(&2).copied().unwrap_or(0);
        let k3 = dist.get(&3).copied().unwrap_or(0);
        let k4plus: u64 = dist.iter().filter(|(k, _)| **k >= 4).map(|(_, v)| *v).sum();
        table.row(&[
            ds.name(),
            hist.distinct_strings().to_string(),
            hist.distinct_hashes().to_string(),
            hist.colliding_strings().to_string(),
            format!("{:.2}%", hist.collision_rate() * 100.0),
            hist.max_multiplicity().to_string(),
            k2.to_string(),
            k3.to_string(),
            k4plus.to_string(),
        ]);
    }

    println!(
        "\nPaper shape: collision rate < 1% on most datasets, < 10% on the\n\
         large/URL-heavy ones; the Wiki tail (k up to 9) comes from URLs whose\n\
         distinguishing characters repeat every 27 positions, cancelling out in\n\
         the circular XOR."
    );
}
