//! Figure 10: update time vs. number of updated nodes.
//!
//! For every dataset, batches of 1 … 100k random text-node updates are
//! applied through the incremental maintenance path (paper Figure 8)
//! and timed; the paper reports < 400 ms even for 1M updates on a
//! 2 GB document, with the double index slightly cheaper than the
//! string index (SCT probe vs. hash combine).
//!
//! As an ablation the full-rebuild alternative (re-running Figure 7)
//! is printed alongside — the crossover shows why the paper's update
//! algorithm exists.

use xvi_bench::{load, ms, reps, scale_permille, time, Table};
use xvi_datagen::{Dataset, UpdateWorkload};
use xvi_fsm::XmlType;
use xvi_index::{IndexConfig, IndexManager};

const BATCHES: &[usize] = &[1, 10, 100, 1_000, 10_000, 100_000];

fn main() {
    let permille = scale_permille();
    let reps = reps();
    println!(
        "Figure 10 — update time (ms) vs. number of updated nodes \
         (scale {permille}‰, {reps} reps, mean)\n"
    );

    for (config, label) in [
        (IndexConfig::string_only(), "string index"),
        (IndexConfig::typed_only(&[XmlType::Double]), "double index"),
    ] {
        println!("== {label} ==");
        let mut headers = vec![("Data", 8)];
        for &b in BATCHES {
            headers.push((Box::leak(format!("{b}").into_boxed_str()), 9));
        }
        headers.push(("rebuild", 10));
        let table = Table::new(&headers);

        for ds in Dataset::paper_suite() {
            let (_, mut doc) = load(ds, permille);
            let mut idx = IndexManager::build(&doc, config.clone());
            let mut cells = vec![ds.name()];
            for (i, &batch) in BATCHES.iter().enumerate() {
                let mut total = std::time::Duration::ZERO;
                for r in 0..reps {
                    let w =
                        UpdateWorkload::generate(&doc, batch, (i * 1000 + r) as u64);
                    let (_, t) = time(|| {
                        idx.update_values(&mut doc, w.as_pairs()).unwrap();
                    });
                    total += t;
                }
                cells.push(ms(total / reps as u32));
            }
            let (_, rebuild) = time(|| {
                let fresh = IndexManager::build(&doc, config.clone());
                std::hint::black_box(fresh);
            });
            cells.push(ms(rebuild));
            table.row(&cells);
        }
        println!();
    }

    println!(
        "Paper shape: sub-linear growth in the batch size; small batches in\n\
         single-digit milliseconds; the double index slightly cheaper than the\n\
         string index; incremental maintenance far below the rebuild column\n\
         until the batch approaches the document size."
    );
}
