//! Figure 10: update time vs. number of updated nodes.
//!
//! Thin wrapper over [`xvi_bench::experiments::run_fig10`]; scale via
//! `XVI_SCALE`, repetitions via `XVI_REPS`.

use xvi_bench::{experiments, reps, scale_permille};

fn main() {
    experiments::run_fig10(scale_permille(), reps());
}
