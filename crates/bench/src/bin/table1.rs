//! Table 1: statistics about the data sets.
//!
//! Thin wrapper over [`xvi_bench::experiments::run_table1`]; scale via
//! `XVI_SCALE` (permille of the default dataset size).

use xvi_bench::{experiments, scale_permille};

fn main() {
    experiments::run_table1(scale_permille());
}
