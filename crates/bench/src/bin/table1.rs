//! Table 1: statistics about the data sets.
//!
//! Columns mirror the paper: serialized size, total nodes, text nodes
//! (with share), text nodes holding a (potential) valid double lexical
//! representation (with share), and the number of *non-leaf* nodes
//! whose string value is a complete double — the mixed-content rarity
//! that motivates the semantics-respecting design.

use xvi_bench::{load, mb, pct, scale_permille, Table};
use xvi_datagen::Dataset;
use xvi_fsm::{analyzer, XmlType};
use xvi_xml::NodeKind;

fn main() {
    let permille = scale_permille();
    println!(
        "Table 1 — dataset statistics (scale {permille}‰ of default ≈ paper/16)\n"
    );
    let table = Table::new(&[
        ("Data", 8),
        ("Size MB", 8),
        ("Total Nodes", 12),
        ("Text Nodes", 12),
        ("%", 6),
        ("%struct", 8),
        ("Double Values", 14),
        ("%", 6),
        ("non-leaf", 9),
    ]);

    let an = analyzer(XmlType::Double);
    for ds in Dataset::paper_suite() {
        let (xml, doc) = load(ds, permille);
        let stats = doc.stats();

        let mut double_texts = 0usize;
        let mut non_leaf_doubles = 0usize;
        for n in doc.descendants(doc.document_node()) {
            match doc.kind(n) {
                NodeKind::Text(t)
                    // The paper counts text nodes with a *(potential)*
                    // valid double lexical representation.
                    if an.state_of(t).is_some() => {
                        double_texts += 1;
                    }
                NodeKind::Element(_)
                    if doc.children(n).count() > 1 => {
                        let sv = doc.string_value(n);
                        let complete = an
                            .state_of(&sv)
                            .map(|s| an.is_complete(s))
                            .unwrap_or(false);
                        if complete {
                            non_leaf_doubles += 1;
                        }
                    }
                _ => {}
            }
        }

        table.row(&[
            ds.name(),
            mb(xml.len()),
            stats.total_nodes.to_string(),
            stats.text_nodes.to_string(),
            pct(stats.text_nodes, stats.total_nodes),
            pct(stats.text_nodes, stats.total_nodes - stats.attribute_nodes),
            double_texts.to_string(),
            pct(double_texts, stats.total_nodes),
            non_leaf_doubles.to_string(),
        ]);
    }
    println!(
        "\nShape targets from the paper: text nodes 56-66% of total (the paper's\n\
         node counts exclude attribute nodes — see the %struct column); double\n\
         values 0.1-10% depending on dataset; non-leaf doubles 0 except DBLP (21)\n\
         and PSD (902) — rare but present, hence the semantics-respecting design."
    );
}
