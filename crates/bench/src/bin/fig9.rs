//! Figure 9: index creation time and storage overhead.
//!
//! Top half — time: shred (parse) time per dataset vs. the extra time
//! to create the string index and the double index. The paper's claim:
//! string-index overhead ≤ ~10% of shredding, double-index ≤ ~2%
//! (combining by SCT probe is cheaper than calling the hash
//! combination function, and most nodes reject).
//!
//! Bottom half — storage: database (document store) size vs. index
//! sizes. The paper's claim: string index ≤ 10-20% of DB size, double
//! index ≤ 2-3%.

use xvi_bench::{load, mb, ms, pct, reps, scale_permille, time, time_mean, Table};
use xvi_datagen::Dataset;
use xvi_fsm::XmlType;
use xvi_index::{IndexConfig, IndexManager};
use xvi_xml::Document;

fn main() {
    let permille = scale_permille();
    let reps = reps();
    println!(
        "Figure 9 — creation time and storage overhead (scale {permille}‰, {reps} reps)\n"
    );

    let table = Table::new(&[
        ("Data", 8),
        ("shred ms", 9),
        ("string ms", 10),
        ("str ovh", 8),
        ("double ms", 10),
        ("dbl ovh", 8),
        ("DB MB", 7),
        ("str MB", 7),
        ("str ovh", 8),
        ("dbl MB", 7),
        ("dbl ovh", 8),
    ]);

    for ds in Dataset::paper_suite() {
        let (xml, doc) = load(ds, permille);

        // Shred time: parse the XML text into the document store.
        let shred = time_mean(reps, |_| {
            let d = Document::parse(&xml).unwrap();
            std::hint::black_box(d);
        });

        // Index creation times, each index family on its own, matching
        // the paper's separate "string index time" / "double index
        // time" bars.
        let string_t = time_mean(reps, |_| {
            let idx = IndexManager::build(&doc, IndexConfig::string_only());
            std::hint::black_box(idx);
        });
        let double_t = time_mean(reps, |_| {
            let idx = IndexManager::build(&doc, IndexConfig::typed_only(&[XmlType::Double]));
            std::hint::black_box(idx);
        });

        // Storage.
        let (string_idx, _) = time(|| IndexManager::build(&doc, IndexConfig::string_only()));
        let (double_idx, _) =
            time(|| IndexManager::build(&doc, IndexConfig::typed_only(&[XmlType::Double])));
        let db_bytes = doc.stats().arena_bytes;
        let str_bytes = string_idx.stats().string_bytes;
        let dbl_bytes = double_idx.stats().typed[0].bytes;

        let ratio =
            |t: std::time::Duration, base: std::time::Duration| -> String {
                format!("{:.1}%", 100.0 * t.as_secs_f64() / base.as_secs_f64())
            };

        table.row(&[
            ds.name(),
            ms(shred),
            ms(string_t),
            ratio(string_t, shred),
            ms(double_t),
            ratio(double_t, shred),
            mb(db_bytes),
            mb(str_bytes),
            pct(str_bytes, db_bytes),
            mb(dbl_bytes),
            pct(dbl_bytes, db_bytes),
        ]);
    }

    println!(
        "\nPaper shape: string-index creation ≤ ~10% of shred time, double ≤ ~2%\n\
         (SCT array probe beats hash combination); string-index storage 10-20%\n\
         of DB size, double-index storage 2-3% (1-byte states, few valid doubles)."
    );
}
