//! Figure 9: index creation time and storage overhead.
//!
//! Thin wrapper over [`xvi_bench::experiments::run_fig9`]; scale via
//! `XVI_SCALE`, repetitions via `XVI_REPS`.

use xvi_bench::{experiments, reps, scale_permille};

fn main() {
    experiments::run_fig9(scale_permille(), reps());
}
