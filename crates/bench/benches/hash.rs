//! Microbenches for the hash function `H` and combination function
//! `C`, including the ablation behind the paper's update-cost claim:
//! recombining an ancestor from stored child hashes (a few `C` calls)
//! vs. re-hashing its concatenated string value.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xvi_hash::{combine, combine_all, hash_bytes, hash_str};

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_H");
    for len in [8usize, 64, 512, 4096] {
        let s: String = "abcdefghijklmnopqrstuvwxyz"
            .chars()
            .cycle()
            .take(len)
            .collect();
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &s, |b, s| {
            b.iter(|| hash_str(black_box(s)));
        });
    }
    g.finish();
}

fn bench_combine(c: &mut Criterion) {
    let a = hash_str("Arthur");
    let b2 = hash_str("Dent");
    c.bench_function("combine_C", |bch| {
        bch.iter(|| combine(black_box(a), black_box(b2)));
    });

    // The update ablation: an element with 8 children.
    let children: Vec<String> = (0..8).map(|i| format!("child value number {i}")).collect();
    let child_hashes: Vec<_> = children.iter().map(|s| hash_str(s)).collect();
    let concatenated = children.concat();

    let mut g = c.benchmark_group("ancestor_recompute");
    g.bench_function("combine_stored_child_hashes", |bch| {
        bch.iter(|| combine_all(black_box(&child_hashes).iter().copied()));
    });
    g.bench_function("rehash_concatenated_string", |bch| {
        bch.iter(|| hash_bytes(black_box(concatenated.as_bytes())));
    });
    g.finish();
}

criterion_group!(benches, bench_hash, bench_combine);
criterion_main!(benches);
