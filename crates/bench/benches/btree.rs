//! B+tree substrate microbenches: point ops and range scans at the
//! key shapes the indices use.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use xvi_btree::BPlusTree;

fn filled(n: u32) -> BPlusTree<(u32, u32), ()> {
    let mut t = BPlusTree::new();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..n {
        t.insert((rng.gen(), rng.gen()), ());
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree_insert");
    for n in [1_000u32, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let t = filled(n);
                black_box(t.len())
            });
        });
    }
    g.finish();
}

fn bench_get_and_range(c: &mut Criterion) {
    let t = filled(100_000);
    let keys: Vec<(u32, u32)> = {
        let mut ks: Vec<_> = t.iter().map(|(k, _)| *k).collect();
        ks.shuffle(&mut StdRng::seed_from_u64(9));
        ks.truncate(1024);
        ks
    };
    c.bench_function("btree_get_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(t.get(&keys[i]))
        });
    });
    c.bench_function("btree_range_100", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(t.range(keys[i]..).take(100).count())
        });
    });
}

/// Ablation: the creation path's bulk load vs. naive random inserts
/// (DESIGN.md decision — why Figure 7 feeds a sorted run).
fn bench_bulk_vs_insert(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut keys: Vec<(u32, u32)> = (0..100_000u32).map(|i| (rng.gen(), i)).collect();
    keys.sort_unstable();
    keys.dedup();

    let mut g = c.benchmark_group("btree_build_100k");
    g.sample_size(10);
    g.bench_function("bulk_load_sorted", |b| {
        b.iter(|| {
            let t: BPlusTree<(u32, u32), ()> =
                BPlusTree::from_sorted_iter(keys.iter().map(|&k| (k, ())));
            black_box(t.len())
        });
    });
    g.bench_function("random_inserts", |b| {
        b.iter(|| {
            let mut t: BPlusTree<(u32, u32), ()> = BPlusTree::new();
            // Insert in hash order (the pre-bulk-load creation path).
            for &k in &keys {
                t.insert(k, ());
            }
            black_box(t.len())
        });
    });
    g.finish();
}

fn bench_remove(c: &mut Criterion) {
    c.bench_function("btree_fill_then_drain_10k", |b| {
        b.iter(|| {
            let mut t = filled(10_000);
            let keys: Vec<(u32, u32)> = t.iter().map(|(k, _)| *k).collect();
            for k in &keys {
                t.remove(k);
            }
            black_box(t.is_empty())
        });
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_get_and_range,
    bench_bulk_vs_insert,
    bench_remove
);
criterion_main!(benches);
