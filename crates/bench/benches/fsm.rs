//! Microbenches for the typed FSMs: feeding text through the monoid
//! (`state_of`), and the paper's §6 claim that combining states by SCT
//! probe is cheaper than invoking the hash combination function.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xvi_fsm::{analyzer, XmlType};
use xvi_hash::{combine, hash_str};

fn bench_state_of(c: &mut Criterion) {
    let double = analyzer(XmlType::Double);
    let date = analyzer(XmlType::DateTime);
    let mut g = c.benchmark_group("fsm_state_of");
    g.bench_function("double_accept", |b| {
        b.iter(|| double.state_of(black_box(" +4.2E1")));
    });
    g.bench_function("double_reject_early", |b| {
        // Rejected on the first byte: the common case the paper counts
        // on ("the majority of all text nodes … will be rejected
        // immediately").
        b.iter(|| double.state_of(black_box("the quick brown fox jumps")));
    });
    g.bench_function("datetime_accept", |b| {
        b.iter(|| date.state_of(black_box("2008-12-31T23:59:59Z")));
    });
    g.finish();
}

fn bench_sct_vs_hash_combine(c: &mut Criterion) {
    let an = analyzer(XmlType::Double);
    let s78 = an.state_of("78");
    let sdot = an.state_of(".");
    let h78 = hash_str("78");
    let hdot = hash_str(".");

    let mut g = c.benchmark_group("combine_step");
    g.bench_function("sct_probe", |b| {
        b.iter(|| an.combine(black_box(s78), black_box(sdot)));
    });
    g.bench_function("hash_combine_fn", |b| {
        b.iter(|| combine(black_box(h78), black_box(hdot)));
    });
    g.finish();
}

criterion_group!(benches, bench_state_of, bench_sct_vs_hash_combine);
criterion_main!(benches);
