//! Lookup-vs-scan: the reason value indices exist. Compares the
//! index-served evaluation of the paper's motivating queries against
//! the full-document-scan baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xvi_datagen::Dataset;
use xvi_index::{IndexConfig, IndexManager, Lookup, QueryEngine};
use xvi_xml::Document;

fn setup() -> (Document, IndexManager) {
    let doc = Document::parse(&Dataset::XMark(1).generate(100)).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    (doc, idx)
}

fn bench_equi(c: &mut Criterion) {
    let (doc, idx) = setup();
    let q = QueryEngine::parse("//person[.//age = 42]").unwrap();
    // Sanity: both strategies agree before we time them.
    assert_eq!(
        QueryEngine::evaluate(&doc, &idx, &q),
        QueryEngine::evaluate_scan(&doc, &q)
    );

    let mut g = c.benchmark_group("query_age_eq_42");
    g.sample_size(20);
    g.bench_function("index", |b| {
        b.iter(|| black_box(QueryEngine::evaluate(&doc, &idx, &q)));
    });
    g.bench_function("scan", |b| {
        b.iter(|| black_box(QueryEngine::evaluate_scan(&doc, &q)));
    });
    g.finish();
}

fn bench_range(c: &mut Criterion) {
    let (doc, idx) = setup();
    let q = QueryEngine::parse("//open_auction[current > 490]").unwrap();
    assert_eq!(
        QueryEngine::evaluate(&doc, &idx, &q),
        QueryEngine::evaluate_scan(&doc, &q)
    );

    let mut g = c.benchmark_group("query_current_gt_490");
    g.sample_size(20);
    g.bench_function("index", |b| {
        b.iter(|| black_box(QueryEngine::evaluate(&doc, &idx, &q)));
    });
    g.bench_function("scan", |b| {
        b.iter(|| black_box(QueryEngine::evaluate_scan(&doc, &q)));
    });
    g.finish();
}

fn bench_substring(c: &mut Criterion) {
    let doc = Document::parse(&Dataset::Wiki.generate(60)).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::string_only().with_substring_index());
    let mut g = c.benchmark_group("substring_lookup");
    g.sample_size(20);
    g.bench_function("contains_trigram", |b| {
        b.iter(|| {
            black_box(
                idx.query(&doc, &Lookup::contains("wikipedia.org/wiki/gold"))
                    .unwrap(),
            )
        });
    });
    g.bench_function("contains_scan_baseline", |b| {
        b.iter(|| {
            // What you'd do without the trigram index: visit every text
            // node and test `contains`.
            let mut hits = 0usize;
            for n in doc.descendants(doc.document_node()) {
                if let Some(v) = doc.direct_value(n) {
                    if v.contains("wikipedia.org/wiki/gold") {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        });
    });
    g.bench_function("wildcard", |b| {
        b.iter(|| {
            black_box(
                idx.query(&doc, &Lookup::wildcard("http://*wiki/gold*"))
                    .unwrap(),
            )
        });
    });
    g.finish();
}

fn bench_raw_lookups(c: &mut Criterion) {
    let (doc, idx) = setup();
    c.bench_function("equi_lookup_person_name", |b| {
        b.iter(|| black_box(idx.query(&doc, &Lookup::equi("Arthur Dent")).unwrap()));
    });
    c.bench_function("range_lookup_prices", |b| {
        b.iter(|| black_box(idx.query(&doc, &Lookup::range_f64(100.0..110.0)).unwrap()));
    });
    c.bench_function("equi_candidates_unverified", |b| {
        b.iter(|| black_box(idx.equi_candidates("Arthur Dent")));
    });
}

criterion_group!(
    benches,
    bench_equi,
    bench_range,
    bench_substring,
    bench_raw_lookups
);
criterion_main!(benches);
