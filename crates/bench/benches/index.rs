//! Index creation and maintenance microbenches on an XMark-shaped
//! document (Criterion companions to the `fig9`/`fig10` binaries).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use xvi_datagen::{Dataset, UpdateWorkload};
use xvi_fsm::XmlType;
use xvi_index::{IndexConfig, IndexManager};
use xvi_xml::Document;

fn corpus() -> Document {
    Document::parse(&Dataset::XMark(1).generate(50)).unwrap()
}

fn bench_creation(c: &mut Criterion) {
    let doc = corpus();
    let mut g = c.benchmark_group("index_creation");
    g.sample_size(20);
    g.bench_function("string_only", |b| {
        b.iter(|| black_box(IndexManager::build(&doc, IndexConfig::string_only())));
    });
    g.bench_function("double_only", |b| {
        b.iter(|| {
            black_box(IndexManager::build(
                &doc,
                IndexConfig::typed_only(&[XmlType::Double]),
            ))
        });
    });
    g.bench_function("string_plus_double", |b| {
        b.iter(|| black_box(IndexManager::build(&doc, IndexConfig::default())));
    });
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_update");
    g.sample_size(20);
    for batch in [1usize, 100, 1_000] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let mut doc = corpus();
            let mut idx = IndexManager::build(&doc, IndexConfig::default());
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let w = UpdateWorkload::generate(&doc, batch, seed);
                idx.update_values(&mut doc, w.as_pairs()).unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_creation, bench_updates);
criterion_main!(benches);
