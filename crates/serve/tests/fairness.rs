//! Scheduler fairness: a hot tenant offering many times the load of
//! its neighbours must not starve them.
//!
//! The deterministic half uses `start_paused` + `max_in_flight = 1`:
//! queues are preloaded while dispatch is off, then released, so the
//! global completion order *is* the DRR dispatch order and the tests
//! can assert on [`ResponseTicket::completion_index`] with no timing
//! assumptions at all. The wall-clock half then checks the end-to-end
//! consequence — a cold tenant's client-observed p99 under a 10× hot
//! neighbour stays within a (generous) constant factor of its solo
//! p99 — with bounds loose enough for noisy CI machines.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use xvi_index::{IndexService, Lookup, ServiceConfig};
use xvi_serve::{LatencyHistogram, Request, Response, Server, ServerConfig};
use xvi_xml::Document;

fn service_with_doc() -> Arc<IndexService> {
    let service = Arc::new(IndexService::new(ServiceConfig::with_shards(2)));
    service.insert_document(
        "d1",
        Document::parse("<people><p><name>Arthur</name><age>42</age></p></people>").unwrap(),
    );
    service
}

fn query() -> Request {
    Request::Query {
        doc: "d1".into(),
        lookup: Lookup::equi("Arthur"),
    }
}

/// Preload a hot tenant with 40 queries and three cold tenants with 4
/// each, then release dispatch. Under DRR (quantum 8, query cost 1)
/// the hot tenant gets at most 8 dispatches before the round moves
/// on, so every cold request completes within the first round — far
/// ahead of the hot backlog. FIFO-by-arrival would place the cold
/// tenants' work entirely *after* the hot tenant's 40 requests.
#[test]
fn drr_interleaves_cold_tenants_ahead_of_hot_backlog() {
    let server = Server::new(
        service_with_doc(),
        ServerConfig {
            workers: 2,
            max_in_flight: 1, // completion order == dispatch order
            quantum: 8,
            start_paused: true,
            ..ServerConfig::default()
        },
    );
    let hot: Vec<_> = (0..40)
        .map(|_| server.submit("hot", query()).unwrap())
        .collect();
    let cold: Vec<Vec<_>> = ["cold-a", "cold-b", "cold-c"]
        .iter()
        .map(|t| (0..4).map(|_| server.submit(t, query()).unwrap()).collect())
        .collect();
    server.resume();
    server.drain();

    for t in hot.iter().chain(cold.iter().flatten()) {
        assert!(matches!(t.try_get(), Some(Ok(Response::Query(_)))));
    }
    // First round: hot spends its quantum (8), then each cold tenant
    // drains completely (4 < quantum). Cold work is done by index
    // 8 + 3*4 = 20 of 52.
    let cold_max = cold
        .iter()
        .flatten()
        .filter_map(|t| t.completion_index())
        .max()
        .unwrap();
    assert!(
        cold_max <= 24,
        "cold tenants finished at completion index {cold_max}, expected ≤ 24 of 52"
    );
    // And nobody starves: the hot backlog still completes.
    assert_eq!(server.stats().completed, 52);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two tenants, hot at 10× the cold tenant's offered load, queues
    /// preloaded. DRR bounds the cold tenant's last completion index
    /// by one hot quantum plus its own backlog — independent of how
    /// large the hot backlog is.
    #[test]
    fn hot_tenant_cannot_starve_cold(cold_jobs in 1usize..6, quantum in 4u64..12) {
        let server = Server::new(
            service_with_doc(),
            ServerConfig {
                workers: 2,
                max_in_flight: 1,
                quantum,
                start_paused: true,
                ..ServerConfig::default()
            },
        );
        let hot_jobs = cold_jobs * 10;
        let hot: Vec<_> = (0..hot_jobs)
            .map(|_| server.submit("hot", query()).unwrap())
            .collect();
        let cold: Vec<_> = (0..cold_jobs)
            .map(|_| server.submit("cold", query()).unwrap())
            .collect();
        server.resume();
        server.drain();

        let cold_max = cold
            .iter()
            .filter_map(|t| t.completion_index())
            .max()
            .unwrap();
        // Per round the hot tenant dispatches ≤ quantum requests
        // (query cost 1) before cold gets its quantum. Cold needs
        // ⌈cold_jobs/quantum⌉ rounds.
        let rounds = cold_jobs.div_ceil(quantum as usize) as u64;
        let bound = rounds * quantum + cold_jobs as u64;
        prop_assert!(
            cold_max <= bound,
            "cold finished at {cold_max}, DRR bound {bound} (hot backlog {hot_jobs})"
        );
        prop_assert!(hot.iter().all(|t| t.try_get().is_some()));
        server.shutdown();
    }
}

/// The latency-level claim from the issue: a cold tenant's p99 under a
/// hot 10× neighbour stays within a constant factor of its solo p99.
/// The factor is deliberately generous (CI machines are noisy); the
/// deterministic tests above pin the precise scheduling behaviour.
#[test]
fn cold_tenant_p99_within_constant_factor_of_solo() {
    let run = |with_hot: bool| -> Duration {
        let server = Arc::new(Server::new(
            service_with_doc(),
            ServerConfig {
                workers: 2,
                max_in_flight: 4,
                quantum: 8,
                tenant_queue: 512,
                ..ServerConfig::default()
            },
        ));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hot_thread = with_hot.then(|| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Open-ish loop: keep ~10× the cold tenant's rate in
                // flight, shedding on Overloaded.
                let mut tickets = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    for _ in 0..10 {
                        if let Ok(t) = server.submit("hot", query()) {
                            tickets.push(t);
                        }
                    }
                    if tickets.len() > 64 {
                        for t in tickets.drain(..) {
                            let _ = t.wait();
                        }
                    }
                }
                for t in tickets {
                    let _ = t.wait();
                }
            })
        });
        // Closed-loop cold tenant: one request at a time.
        let hist = LatencyHistogram::new();
        for _ in 0..200 {
            let start = Instant::now();
            let t = server.submit("cold", query()).unwrap();
            t.wait().unwrap();
            hist.record(start.elapsed());
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = hot_thread {
            h.join().unwrap();
        }
        server.drain();
        server.shutdown();
        hist.snapshot().percentile(0.99)
    };
    let solo = run(false);
    let contended = run(true);
    let bound = solo * 50 + Duration::from_millis(20);
    assert!(
        contended <= bound,
        "cold p99 {contended:?} under hot load vs solo {solo:?} (bound {bound:?})"
    );
}
