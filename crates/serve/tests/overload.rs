//! Admission control under overload: full queues produce typed
//! rejections, never deadlocks, and never a silently dropped commit.

use std::sync::Arc;
use std::time::Duration;

use xvi_index::{IndexService, Lookup, ServiceConfig};
use xvi_serve::{Request, Response, ServeError, Server, ServerConfig};
use xvi_xml::Document;

fn service(shards: usize, max_queue: usize) -> Arc<IndexService> {
    let service = Arc::new(IndexService::new(
        ServiceConfig::with_shards(shards).with_max_queue(max_queue),
    ));
    for id in ["a", "b", "c", "d"] {
        service.insert_document(
            id,
            Document::parse("<r><name>Arthur</name><age>42</age></r>").unwrap(),
        );
    }
    service
}

/// A one-write transaction against `doc`'s first value node. (Empty
/// transactions short-circuit before the pipeline, so counting what
/// actually landed needs real writes.)
fn commit(service: &IndexService, doc: &str) -> Request {
    let node = service
        .read(doc, |d, _| {
            d.descendants_or_self(d.document_node())
                .find(|&n| d.kind(n).has_direct_value())
                .unwrap()
        })
        .unwrap();
    let mut txn = service.begin();
    txn.set_value(node, "updated");
    Request::Commit {
        doc: doc.into(),
        txn,
    }
}

/// A paused server admits exactly `tenant_queue` requests per tenant,
/// rejects the next with a typed, actionable error, and still
/// completes everything admitted once dispatch resumes.
#[test]
fn full_tenant_queue_rejects_typed_and_recovers() {
    let server = Server::new(
        service(2, 4096),
        ServerConfig {
            tenant_queue: 4,
            start_paused: true,
            ..ServerConfig::default()
        },
    );
    let admitted: Vec<_> = (0..4)
        .map(|_| server.submit("t1", commit(server.service(), "a")).unwrap())
        .collect();

    let err = server
        .submit("t1", commit(server.service(), "a"))
        .unwrap_err();
    match err {
        ServeError::Overloaded { retry_after } => {
            assert!(retry_after >= Duration::from_micros(80));
            assert!(retry_after <= Duration::from_millis(50));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Tenant isolation: a different tenant's queue is unaffected.
    let other = server.submit("t2", commit(server.service(), "b")).unwrap();

    let stats = server.stats();
    assert_eq!(stats.admitted, 5);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.queue_depth, 5);

    server.resume();
    server.drain();
    for t in admitted.iter().chain([&other]) {
        assert!(matches!(t.try_get(), Some(Ok(Response::Commit(_)))));
    }
    assert_eq!(server.stats().completed, 5);
    assert_eq!(server.service().commit_count(), 5);
    server.shutdown();
}

/// Saturate a single shard whose submission queue holds only 2
/// entries. The serve layer's retry-with-backoff must absorb the shard
/// rejections: every admitted commit eventually lands exactly once —
/// the commit counter equals the number of Ok receipts — and no
/// ticket waits forever.
#[test]
fn shard_overload_retries_and_never_drops_commits() {
    let server = Server::new(
        service(1, 2),
        ServerConfig {
            workers: 4,
            max_in_flight: 32,
            tenant_queue: 256,
            commit_retries: 1000,
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = (0..60)
        .map(|i| {
            let tenant = ["t1", "t2", "t3"][i % 3];
            let doc = ["a", "b", "c", "d"][i % 4];
            server
                .submit(tenant, commit(server.service(), doc))
                .unwrap()
        })
        .collect();
    let mut ok = 0u64;
    for t in &tickets {
        match t.wait() {
            Ok(Response::Commit(_)) => ok += 1,
            other => panic!("commit neither completed nor typed-failed: {other:?}"),
        }
    }
    assert_eq!(ok, 60, "every admitted commit must land");
    assert_eq!(
        server.service().commit_count(),
        60,
        "no duplicates, no drops"
    );
    server.shutdown();
}

/// Mixed queries and commits under the same saturation: queries keep
/// being served while the write path backs off.
#[test]
fn queries_survive_write_overload() {
    let server = Server::new(
        service(1, 2),
        ServerConfig {
            workers: 4,
            max_in_flight: 16,
            commit_retries: 1000,
            ..ServerConfig::default()
        },
    );
    let mut tickets = Vec::new();
    for i in 0..40 {
        tickets.push(
            server
                .submit("w", commit(server.service(), ["a", "b"][i % 2]))
                .unwrap(),
        );
        tickets.push(
            server
                .submit(
                    "r",
                    // Probe a value the commits never touch (they
                    // rewrite the name text, not the age).
                    Request::Query {
                        doc: "a".into(),
                        lookup: Lookup::equi("42"),
                    },
                )
                .unwrap(),
        );
    }
    let mut queries = 0;
    for t in tickets {
        match t.wait().expect("no admitted request may be dropped") {
            Response::Commit(_) => {}
            Response::Query(hits) => {
                assert!(!hits.is_empty());
                queries += 1;
            }
        }
    }
    assert_eq!(queries, 40);
    server.shutdown();
}

/// After shutdown begins, submission fails closed — typed, not hung.
#[test]
fn closed_server_rejects_new_work() {
    let server = Server::new(service(2, 4096), ServerConfig::default());
    server.shutdown();
    assert!(matches!(
        server.submit("t", commit(server.service(), "a")),
        Err(ServeError::Closed)
    ));
}
