//! Streaming exports: golden outputs for every format, quoting /
//! escaping edge cases, and a differential check that the streamed
//! rows are exactly the materialised query result.

use std::sync::Arc;

use xvi_index::{IndexService, Lookup, ServiceConfig};
use xvi_serve::ExportSpec;
use xvi_xml::Document;

/// Two identical documents inserted in reverse id order, so the golden
/// outputs also pin the doc-id sort.
fn two_doc_service() -> Arc<IndexService> {
    let service = Arc::new(IndexService::new(ServiceConfig::with_shards(2)));
    for id in ["b", "a"] {
        service.insert_document(id, Document::parse("<r><a>X</a><b>Y</b></r>").unwrap());
    }
    service
}

/// A document whose text values exercise CSV quoting and JSON
/// escaping: commas, quotes, newlines, tabs.
fn nasty_service() -> Arc<IndexService> {
    // contains: lookups need the trigram substring index.
    let service = Arc::new(IndexService::new(
        ServiceConfig::with_shards(1)
            .with_index(xvi_index::IndexConfig::default().with_substring_index()),
    ));
    service.insert_document("d", Document::parse("<r><v>seed</v></r>").unwrap());
    let node = service
        .read("d", |doc, _| {
            doc.descendants_or_self(doc.document_node())
                .find(|&n| doc.kind(n).has_direct_value())
                .unwrap()
        })
        .unwrap();
    let mut txn = service.begin();
    txn.set_value(node, "a,b \"quoted\"\nline2\ttab");
    service.commit("d", txn).unwrap();
    service
}

#[test]
fn golden_csv() {
    let service = two_doc_service();
    let spec =
        ExportSpec::parse("format=csv; columns=doc,node,name,kind,value; lookup=equi:X").unwrap();
    let mut out = Vec::new();
    let rows = spec.stream(&service.snapshot_all(), &mut out).unwrap();
    assert_eq!(rows, 4);
    assert_eq!(
        String::from_utf8(out).unwrap(),
        "doc,node,name,kind,value\n\
         a,2,a,element,X\n\
         a,3,,text,X\n\
         b,2,a,element,X\n\
         b,3,,text,X\n"
    );
}

#[test]
fn golden_json() {
    let service = two_doc_service();
    let spec = ExportSpec::parse("format=json; columns=doc,node,value; lookup=equi:Y").unwrap();
    let mut out = Vec::new();
    let rows = spec.stream(&service.snapshot_all(), &mut out).unwrap();
    assert_eq!(rows, 4);
    assert_eq!(
        String::from_utf8(out).unwrap(),
        "[\n  {\"doc\":\"a\",\"node\":4,\"value\":\"Y\"},\n  \
         {\"doc\":\"a\",\"node\":5,\"value\":\"Y\"},\n  \
         {\"doc\":\"b\",\"node\":4,\"value\":\"Y\"},\n  \
         {\"doc\":\"b\",\"node\":5,\"value\":\"Y\"}\n]\n"
    );
}

#[test]
fn golden_jsonl() {
    let service = two_doc_service();
    let spec = ExportSpec::parse("format=jsonl; columns=doc,node,kind; lookup=equi:X").unwrap();
    let mut out = Vec::new();
    let rows = spec.stream(&service.snapshot_all(), &mut out).unwrap();
    assert_eq!(rows, 4);
    assert_eq!(
        String::from_utf8(out).unwrap(),
        "{\"doc\":\"a\",\"node\":2,\"kind\":\"element\"}\n\
         {\"doc\":\"a\",\"node\":3,\"kind\":\"text\"}\n\
         {\"doc\":\"b\",\"node\":2,\"kind\":\"element\"}\n\
         {\"doc\":\"b\",\"node\":3,\"kind\":\"text\"}\n"
    );
}

#[test]
fn csv_quotes_commas_quotes_and_newlines() {
    let service = nasty_service();
    let spec = ExportSpec::parse("format=csv; columns=value; lookup=contains:quoted; header=false")
        .unwrap();
    let mut out = Vec::new();
    let rows = spec.stream(&service.snapshot_all(), &mut out).unwrap();
    assert!(rows >= 1);
    let text = String::from_utf8(out).unwrap();
    // RFC-4180: the whole field quoted, inner quotes doubled, the raw
    // newline preserved inside the quotes.
    assert!(
        text.contains("\"a,b \"\"quoted\"\"\nline2\ttab\""),
        "got {text:?}"
    );
}

#[test]
fn json_escapes_control_characters() {
    let service = nasty_service();
    let spec = ExportSpec::parse("format=jsonl; columns=value; lookup=contains:quoted").unwrap();
    let mut out = Vec::new();
    spec.stream(&service.snapshot_all(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(
        text.contains(r#"{"value":"a,b \"quoted\"\nline2\ttab"}"#),
        "got {text:?}"
    );
    // Raw newlines may only separate rows, never appear inside one.
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "torn row {line:?}"
        );
    }
}

#[test]
fn non_finite_doubles_are_null_in_json_and_text_in_csv() {
    let service = Arc::new(IndexService::new(ServiceConfig::with_shards(1)));
    service.insert_document(
        "d",
        Document::parse("<r><n>42.5</n><s>not-a-number</s></r>").unwrap(),
    );
    let jsonl = ExportSpec::parse("format=jsonl; columns=name,double").unwrap();
    let mut out = Vec::new();
    jsonl.stream(&service.snapshot_all(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains(r#"{"name":"n","double":42.5}"#), "got {text}");
    assert!(text.contains(r#"{"name":"s","double":null}"#), "got {text}");

    let csv = ExportSpec::parse("format=csv; columns=name,double; header=false").unwrap();
    let mut out = Vec::new();
    csv.stream(&service.snapshot_all(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("n,42.5\n"), "got {text}");
    assert!(text.contains("s,NaN\n"), "got {text}");
}

/// Differential: the streamed CSV rows are exactly the rows a
/// materialised per-document `query()` produces — same docs, same
/// nodes, same order.
#[test]
fn streamed_rows_match_materialised_query() {
    let service = Arc::new(IndexService::new(ServiceConfig::with_shards(4)));
    for (i, id) in ["w", "x", "y", "z"].iter().enumerate() {
        let body: String = (0..20)
            .map(|j| format!("<item><price>{}</price></item>", i * 20 + j))
            .collect();
        service.insert_document(*id, Document::parse(&format!("<r>{body}</r>")).unwrap());
    }
    let lookup = Lookup::range_f64(10.0..=55.0);
    let spec = ExportSpec::parse("format=csv; columns=doc,node; lookup=range:10..55; header=false")
        .unwrap();
    let snapshot = service.snapshot_all();
    let mut out = Vec::new();
    let rows = spec.stream(&snapshot, &mut out).unwrap();

    let mut expected = Vec::new();
    let mut docs: Vec<_> = snapshot.iter().collect();
    docs.sort_by(|a, b| a.0.cmp(b.0));
    for (id, snap) in docs {
        for node in snap.query(&lookup).unwrap() {
            expected.push(format!("{id},{}", node.index()));
        }
    }
    assert!(
        !expected.is_empty(),
        "differential base must be non-trivial"
    );
    let streamed: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(
        streamed,
        expected.iter().map(String::as_str).collect::<Vec<_>>()
    );
    assert_eq!(rows as usize, expected.len());
}
