//! A hashed timer wheel over an injectable [`Clock`](crate::clock::Clock).
//!
//! Timers are parked [`Waker`]s keyed by an absolute deadline (in the
//! clock's nanoseconds). Deadlines are quantised to a fixed tick
//! granularity and hashed into a ring of slots; advancing the wheel to
//! the clock's current reading fires every entry whose deadline has
//! passed. The wheel never sleeps itself — the executor's workers call
//! [`TimerWheel::advance_to`] between polls, which is what makes a
//! [`ManualClock`](crate::clock::ManualClock)-driven test fully
//! deterministic: time (and therefore timer firing) moves only when
//! the test advances the clock.

use std::sync::Mutex;
use std::task::Waker;
use std::time::Duration;

/// Number of slots in the ring. Entries further out than one rotation
/// simply stay in their slot (each carries its absolute deadline) and
/// are skipped until their tick comes round again.
const SLOTS: usize = 256;

/// One parked timer.
struct Entry {
    deadline_tick: u64,
    waker: Waker,
}

struct WheelState {
    slots: Vec<Vec<Entry>>,
    /// First tick not yet fired.
    next_tick: u64,
    /// Parked entries, for cheap emptiness checks.
    len: usize,
}

/// A hashed timer wheel; see the module docs.
pub struct TimerWheel {
    state: Mutex<WheelState>,
    granularity_ns: u64,
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("TimerWheel")
            .field("granularity_ns", &self.granularity_ns)
            .field("parked", &st.len)
            .finish()
    }
}

impl TimerWheel {
    /// A wheel with the given tick granularity (clamped to ≥ 1 ns).
    pub fn new(granularity: Duration) -> TimerWheel {
        TimerWheel {
            state: Mutex::new(WheelState {
                slots: (0..SLOTS).map(|_| Vec::new()).collect(),
                next_tick: 0,
                len: 0,
            }),
            granularity_ns: u64::try_from(granularity.as_nanos())
                .unwrap_or(u64::MAX)
                .max(1),
        }
    }

    fn tick_of(&self, deadline_ns: u64) -> u64 {
        // Round up: an entry never fires before its deadline.
        deadline_ns.div_ceil(self.granularity_ns)
    }

    /// Parks `waker` to be fired once the wheel is advanced to (or
    /// past) `deadline_ns`.
    pub fn schedule(&self, deadline_ns: u64, waker: Waker) {
        let tick = self.tick_of(deadline_ns);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // A deadline already behind the cursor would sit unvisited for
        // up to a full rotation; bump it to the next tick instead so
        // the very next advance fires it.
        let tick = tick.max(st.next_tick);
        let slot = (tick % SLOTS as u64) as usize;
        st.slots[slot].push(Entry {
            deadline_tick: tick,
            waker,
        });
        st.len += 1;
    }

    /// Fires (returns) every waker whose deadline is at or before
    /// `now_ns`. Callers wake the returned wakers **outside** the
    /// wheel's lock.
    pub fn advance_to(&self, now_ns: u64) -> Vec<Waker> {
        let now_tick = now_ns / self.granularity_ns;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.len == 0 {
            st.next_tick = st.next_tick.max(now_tick + 1);
            return Vec::new();
        }
        let mut fired = Vec::new();
        // Visit each candidate slot once: either the ticks elapsed
        // since the last advance (the common, cheap case) or — after a
        // long idle stretch — one full rotation.
        let span = (now_tick + 1)
            .saturating_sub(st.next_tick)
            .min(SLOTS as u64);
        let first = if span == SLOTS as u64 {
            0
        } else {
            st.next_tick % SLOTS as u64
        };
        for i in 0..span {
            let slot = ((first + i) % SLOTS as u64) as usize;
            let entries = &mut st.slots[slot];
            let mut j = 0;
            while j < entries.len() {
                if entries[j].deadline_tick <= now_tick {
                    fired.push(entries.swap_remove(j).waker);
                } else {
                    j += 1;
                }
            }
        }
        st.len -= fired.len();
        st.next_tick = st.next_tick.max(now_tick + 1);
        fired
    }

    /// Number of parked timers.
    pub fn parked(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    struct Flag(AtomicUsize);
    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn flag() -> (Arc<Flag>, Waker) {
        let f = Arc::new(Flag(AtomicUsize::new(0)));
        let w = Waker::from(Arc::clone(&f));
        (f, w)
    }

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let wheel = TimerWheel::new(Duration::from_micros(1));
        let (f, w) = flag();
        wheel.schedule(5_000, w);
        assert_eq!(wheel.parked(), 1);
        for w in wheel.advance_to(4_999) {
            w.wake();
        }
        assert_eq!(f.0.load(Ordering::SeqCst), 0, "must not fire early");
        for w in wheel.advance_to(5_000) {
            w.wake();
        }
        assert_eq!(f.0.load(Ordering::SeqCst), 1);
        assert_eq!(wheel.parked(), 0);
    }

    #[test]
    fn far_deadlines_survive_full_rotations() {
        let wheel = TimerWheel::new(Duration::from_nanos(1));
        let (far, wf) = flag();
        let (near, wn) = flag();
        // More than SLOTS ticks out: hashes onto an early slot that
        // gets visited (and must be skipped) on earlier passes.
        wheel.schedule(SLOTS as u64 * 3 + 7, wf);
        wheel.schedule(3, wn);
        for w in wheel.advance_to(SLOTS as u64) {
            w.wake();
        }
        assert_eq!(near.0.load(Ordering::SeqCst), 1);
        assert_eq!(far.0.load(Ordering::SeqCst), 0);
        for w in wheel.advance_to(SLOTS as u64 * 4) {
            w.wake();
        }
        assert_eq!(far.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn long_idle_gap_fires_everything_in_one_pass() {
        let wheel = TimerWheel::new(Duration::from_nanos(1));
        let flags: Vec<Arc<Flag>> = (0..64)
            .map(|i| {
                let (f, w) = flag();
                wheel.schedule(1 + i * 17, w);
                f
            })
            .collect();
        for w in wheel.advance_to(1_000_000) {
            w.wake();
        }
        for (i, f) in flags.iter().enumerate() {
            assert_eq!(f.0.load(Ordering::SeqCst), 1, "timer {i}");
        }
        assert_eq!(wheel.parked(), 0);
    }
}
