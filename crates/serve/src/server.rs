//! The serving frontend: admission control, per-tenant fairness and
//! latency observability over an [`IndexService`].
//!
//! Requests enter through [`Server::submit`], which either **admits**
//! them into the caller's per-tenant queue or **rejects** them with a
//! typed [`ServeError::Overloaded`] carrying a suggested backoff —
//! the queue is bounded, so overload surfaces at the edge instead of
//! growing latency without bound (an open-loop arrival process has no
//! other way to learn it should slow down).
//!
//! Admitted requests are dispatched by **deficit round-robin** across
//! tenants: each scheduling round tops up the head tenant's deficit by
//! a quantum and dispatches while the deficit covers the next
//! request's cost. A tenant offering 10× the load gets at most its
//! round-robin share of dispatch slots, so a cold tenant's tail
//! latency stays within a constant factor of running alone.
//!
//! Every completed request records its **end-to-end latency**
//! (admission → completion, on the server's [`Clock`]) into a shared
//! [`LatencyHistogram`]; [`Server::stats`] snapshots the histogram and
//! the admission counters for reporting.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use xvi_index::{CommitReceipt, IndexError, IndexService, Lookup, Transaction};
use xvi_obs::{Counter, Obs, Stage, Trace, Unit};
use xvi_xml::NodeId;

use crate::clock::{Clock, MonotonicClock};
use crate::executor::Executor;
use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// Relative DRR cost of a query (a snapshot probe).
const QUERY_COST: u64 = 1;
/// Relative DRR cost of a commit (pipeline submission + group commit).
const COMMIT_COST: u64 = 4;

/// Configuration for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Maximum requests dispatched but not yet completed.
    pub max_in_flight: usize,
    /// Per-tenant admission queue capacity; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub tenant_queue: usize,
    /// DRR quantum: cost units granted to a tenant per scheduling
    /// round. Queries cost 1, commits 4.
    pub quantum: u64,
    /// Start with dispatch paused — requests are admitted (or
    /// rejected) but nothing runs until [`Server::resume`]. Lets tests
    /// preload queues and observe pure scheduling order.
    pub start_paused: bool,
    /// Maximum admission-control retries a commit job performs when
    /// the underlying shard queue is full, backing off by the shard's
    /// suggested `retry_after` between attempts.
    pub commit_retries: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_in_flight: 64,
            tenant_queue: 256,
            quantum: 8,
            start_paused: false,
            commit_retries: 16,
        }
    }
}

/// A request to serve.
#[derive(Debug, Clone)]
pub enum Request {
    /// Apply a transaction to a document (group-committed).
    Commit {
        /// Target document id.
        doc: String,
        /// The operations to apply.
        txn: Transaction,
    },
    /// Evaluate a lookup against a document's current snapshot.
    Query {
        /// Target document id.
        doc: String,
        /// The lookup to evaluate.
        lookup: Lookup,
    },
}

impl Request {
    fn cost(&self) -> u64 {
        match self {
            Request::Commit { .. } => COMMIT_COST,
            Request::Query { .. } => QUERY_COST,
        }
    }
}

/// A completed request's payload.
#[derive(Debug, Clone)]
pub enum Response {
    /// Receipt of a committed transaction.
    Commit(CommitReceipt),
    /// Matching nodes of a query.
    Query(Vec<NodeId>),
}

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The tenant's admission queue (or, after retries, the underlying
    /// shard queue) is full. Back off for `retry_after` and resubmit.
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after: Duration,
    },
    /// The server is shutting down; the request was not admitted.
    Closed,
    /// The underlying index rejected the request.
    Index(IndexError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after } => {
                write!(f, "server overloaded; retry after {retry_after:?}")
            }
            ServeError::Closed => write!(f, "server is closed"),
            ServeError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IndexError> for ServeError {
    fn from(e: IndexError) -> ServeError {
        match e {
            IndexError::Overloaded { retry_after, .. } => ServeError::Overloaded { retry_after },
            other => ServeError::Index(other),
        }
    }
}

/// Where a finished request parks its result.
#[derive(Debug)]
struct ResponseSlot {
    result: Mutex<Option<Result<Response, ServeError>>>,
    done: Condvar,
    /// Global completion sequence number, for scheduling-order tests.
    completion_index: AtomicU64,
    /// Admission timestamp on the server clock.
    enqueue_ns: u64,
}

/// Handle to an admitted request's eventual [`Response`].
#[derive(Debug, Clone)]
pub struct ResponseTicket {
    slot: Arc<ResponseSlot>,
}

impl ResponseTicket {
    /// Blocks until the request completes.
    pub fn wait(&self) -> Result<Response, ServeError> {
        let mut guard = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = guard.as_ref() {
                return r.clone();
            }
            guard = self
                .slot
                .done
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The result if already complete, without blocking.
    pub fn try_get(&self) -> Option<Result<Response, ServeError>> {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The request's position in the global completion order
    /// (1-based), once complete. Scheduling tests use this to observe
    /// DRR dispatch order without timing assumptions.
    pub fn completion_index(&self) -> Option<u64> {
        match self.slot.completion_index.load(Ordering::SeqCst) {
            0 => None,
            n => Some(n),
        }
    }
}

/// One admitted request waiting for dispatch.
struct Job {
    request: Request,
    slot: Arc<ResponseSlot>,
    /// Sampled request trace plus its admission timestamp on the
    /// tracer's clock (the admission-wait stage starts there). The
    /// serve layer started it, so the serve layer finishes it — after
    /// the response is complete, with the service's pipeline stages
    /// already attributed to it.
    trace: Option<(Trace, u64)>,
}

#[derive(Default)]
struct TenantQueue {
    jobs: VecDeque<Job>,
    deficit: u64,
    /// Whether the deficit was already topped up this round — the
    /// dispatcher re-fronts a mid-round tenant, and a re-front visit
    /// must not grant a second quantum.
    topped_up: bool,
}

struct SchedState {
    tenants: HashMap<String, TenantQueue>,
    /// Tenants with queued work, in round-robin order.
    active: VecDeque<String>,
    paused: bool,
    closed: bool,
}

struct ServerShared {
    service: Arc<IndexService>,
    clock: Arc<dyn Clock>,
    /// The service's observability hub: admission counters and the
    /// latency histogram live in its registry (shared cells — the
    /// handles below), and sampled requests trace through its tracer.
    obs: Arc<Obs>,
    sched: Mutex<SchedState>,
    work: Condvar,
    in_flight: AtomicUsize,
    admitted: Counter,
    rejected: Counter,
    completed: Counter,
    completions: AtomicU64,
    latency: Arc<LatencyHistogram>,
    config: ServerConfig,
}

/// Point-in-time serving metrics; see [`Server::stats`].
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests accepted into a tenant queue.
    pub admitted: u64,
    /// Requests refused with [`ServeError::Overloaded`] at admission.
    pub rejected: u64,
    /// Requests fully completed.
    pub completed: u64,
    /// Dispatched but not yet completed.
    pub in_flight: usize,
    /// Admitted but not yet dispatched, summed over tenants.
    pub queue_depth: usize,
    /// End-to-end latency distribution of completed requests.
    pub latency: HistogramSnapshot,
}

/// The serving frontend; see the module docs.
pub struct Server {
    shared: Arc<ServerShared>,
    executor: Arc<Executor>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("in_flight", &self.shared.in_flight.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// A server over `service` with the production clock.
    pub fn new(service: Arc<IndexService>, config: ServerConfig) -> Server {
        Server::with_clock(service, config, Arc::new(MonotonicClock::new()))
    }

    /// A server over an injected clock (latency measurement and
    /// backoff sleeps both read it).
    pub fn with_clock(
        service: Arc<IndexService>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Server {
        let executor = Arc::new(Executor::with_clock(config.workers, Arc::clone(&clock)));
        let obs = Arc::clone(service.obs());
        let shared = Arc::new(ServerShared {
            admitted: obs.registry.counter(
                "xvi_serve_admitted_total",
                "Requests accepted into a tenant queue",
                &[],
            ),
            rejected: obs.registry.counter(
                "xvi_serve_rejected_total",
                "Requests refused at admission (overloaded)",
                &[],
            ),
            completed: obs.registry.counter(
                "xvi_serve_completed_total",
                "Requests fully completed",
                &[],
            ),
            latency: obs.registry.histogram(
                "xvi_serve_latency_seconds",
                "End-to-end request latency (admission to completion)",
                &[],
                Unit::Seconds,
            ),
            obs,
            service,
            clock,
            sched: Mutex::new(SchedState {
                tenants: HashMap::new(),
                active: VecDeque::new(),
                paused: config.start_paused,
                closed: false,
            }),
            work: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            completions: AtomicU64::new(0),
            config,
        });
        {
            // Dispatch-state gauges come from a snapshot-time
            // collector (Weak: the shared state indirectly owns the
            // registry through the service's hub).
            let weak = Arc::downgrade(&shared);
            shared
                .obs
                .registry
                .register_collector(Box::new(move |sink| {
                    let Some(shared) = weak.upgrade() else { return };
                    let queued: usize = {
                        let st = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
                        st.tenants.values().map(|t| t.jobs.len()).sum()
                    };
                    sink.gauge(
                        "xvi_serve_queue_depth",
                        "Admitted requests not yet dispatched, summed over tenants",
                        &[],
                        queued as u64,
                    );
                    sink.gauge(
                        "xvi_serve_in_flight",
                        "Requests dispatched but not yet completed",
                        &[],
                        shared.in_flight.load(Ordering::Relaxed) as u64,
                    );
                }));
        }
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            std::thread::Builder::new()
                .name("xvi-serve-dispatch".into())
                .spawn(move || dispatch_loop(shared, executor))
                .expect("spawn dispatcher")
        };
        Server {
            shared,
            executor,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// The underlying index service.
    pub fn service(&self) -> &Arc<IndexService> {
        &self.shared.service
    }

    /// Submits a request on behalf of `tenant`. Returns a ticket when
    /// admitted; rejects with [`ServeError::Overloaded`] when the
    /// tenant's queue is full, or [`ServeError::Closed`] after
    /// shutdown began.
    pub fn submit(&self, tenant: &str, request: Request) -> Result<ResponseTicket, ServeError> {
        let mut st = self.shared.sched.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(ServeError::Closed);
        }
        let depth = st.tenants.get(tenant).map_or(0, |t| t.jobs.len());
        if depth >= self.shared.config.tenant_queue.max(1) {
            self.shared.rejected.inc();
            // Scale the suggested backoff with how far over capacity
            // the caller is pushing: one dispatch-ish interval per
            // queued request, clamped to a sane range.
            let retry_after = Duration::from_micros((depth as u64 * 20).clamp(100, 50_000));
            return Err(ServeError::Overloaded { retry_after });
        }
        let slot = Arc::new(ResponseSlot {
            result: Mutex::new(None),
            done: Condvar::new(),
            completion_index: AtomicU64::new(0),
            enqueue_ns: self.shared.clock.now_ns(),
        });
        let kind = match &request {
            Request::Commit { .. } => "serve-commit",
            Request::Query { .. } => "serve-query",
        };
        let trace = self
            .shared
            .obs
            .tracer
            .maybe_start(kind, || format!("tenant={tenant} request={request:?}"))
            .map(|t| {
                let admitted_ns = t.now_ns();
                (t, admitted_ns)
            });
        let queue = st.tenants.entry(tenant.to_string()).or_default();
        queue.jobs.push_back(Job {
            request,
            slot: Arc::clone(&slot),
            trace,
        });
        if queue.jobs.len() == 1 {
            st.active.push_back(tenant.to_string());
        }
        self.shared.admitted.inc();
        drop(st);
        self.shared.work.notify_all();
        Ok(ResponseTicket { slot })
    }

    /// Pauses dispatch: admitted requests queue but do not run.
    pub fn pause(&self) {
        self.shared
            .sched
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .paused = true;
    }

    /// Resumes dispatch after [`Server::pause`] (or `start_paused`).
    pub fn resume(&self) {
        self.shared
            .sched
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .paused = false;
        self.shared.work.notify_all();
    }

    /// Current metrics.
    pub fn stats(&self) -> ServerStats {
        let queue_depth = {
            let st = self.shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            st.tenants.values().map(|t| t.jobs.len()).sum()
        };
        ServerStats {
            admitted: self.shared.admitted.get(),
            rejected: self.shared.rejected.get(),
            completed: self.shared.completed.get(),
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            queue_depth,
            latency: self.shared.latency.snapshot(),
        }
    }

    /// Blocks until every admitted request has completed (dispatch
    /// must not be paused, or this never returns).
    pub fn drain(&self) {
        loop {
            let empty = {
                let st = self.shared.sched.lock().unwrap_or_else(|e| e.into_inner());
                st.tenants.values().all(|t| t.jobs.is_empty())
            };
            if empty && self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stops admission, drains in-flight work, and joins the
    /// dispatcher and executor.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            st.closed = true;
            st.paused = false;
        }
        self.shared.work.notify_all();
        if let Some(h) = self
            .dispatcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
        self.executor.wait_idle();
        self.executor.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The DRR scheduling loop. Runs on its own thread; spawns dispatched
/// jobs onto the executor.
fn dispatch_loop(shared: Arc<ServerShared>, executor: Arc<Executor>) {
    loop {
        let job = {
            let mut st = shared.sched.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let drained = st.active.is_empty();
                if st.closed && drained {
                    return;
                }
                let can_dispatch = !st.paused
                    && !drained
                    && shared.in_flight.load(Ordering::SeqCst) < shared.config.max_in_flight.max(1);
                if can_dispatch {
                    break;
                }
                let (g, _) = shared
                    .work
                    .wait_timeout(st, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
            // DRR: the head tenant's deficit grows by one quantum per
            // visit and pays for dispatched requests; when it cannot
            // cover the next request, the tenant goes to the back of
            // the round with its balance kept.
            let tenant = st.active.pop_front().expect("active checked non-empty");
            let q = st.tenants.get_mut(&tenant).expect("active tenant exists");
            if !q.topped_up {
                q.deficit += shared.config.quantum;
                q.topped_up = true;
            }
            let cost = q
                .jobs
                .front()
                .expect("active tenant has work")
                .request
                .cost();
            if q.deficit < cost {
                // Quantum spent: back of the round, balance carried.
                q.topped_up = false;
                st.active.push_back(tenant);
                continue;
            }
            q.deficit -= cost;
            let job = q.jobs.pop_front().expect("front checked");
            if q.jobs.is_empty() {
                // An idle tenant must not bank credit for later bursts.
                q.deficit = 0;
                q.topped_up = false;
            } else {
                st.active.push_front(tenant);
            }
            job
        };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        spawn_job(&shared, &executor, job);
    }
}

/// A tenant keeps dispatching while its deficit covers the next cost;
/// `dispatch_loop` re-fronts it so consecutive grabs within one round
/// stay cheap. (Pushing to the *front* is what makes a round "spend
/// the whole quantum" rather than one request per visit.)
fn spawn_job(shared: &Arc<ServerShared>, executor: &Arc<Executor>, job: Job) {
    let Job {
        request,
        slot,
        trace,
    } = job;
    let shared = Arc::clone(shared);
    let exec = Arc::clone(executor);
    executor.spawn(async move {
        // The wait between admission and this dispatch is the
        // admission-control stage of a traced request.
        let trace = trace.map(|(t, admitted_ns)| {
            t.record_stage(Stage::AdmissionWait, admitted_ns);
            t
        });
        let result: Result<Response, ServeError> = match request {
            Request::Query { doc, lookup } => shared
                .service
                .query_traced(&doc, &lookup, trace.as_ref())
                .map(Response::Query)
                .map_err(ServeError::from),
            Request::Commit { doc, txn } => {
                commit_with_backoff(&shared, &exec, &doc, txn, trace.as_ref()).await
            }
        };
        // Completion bookkeeping: latency, sequence number, wake the
        // waiter, free the in-flight slot, kick the dispatcher.
        let elapsed = shared.clock.now_ns().saturating_sub(slot.enqueue_ns);
        shared.latency.record(Duration::from_nanos(elapsed));
        let seq = shared.completions.fetch_add(1, Ordering::SeqCst) + 1;
        slot.completion_index.store(seq, Ordering::SeqCst);
        {
            let mut guard = slot.result.lock().unwrap_or_else(|e| e.into_inner());
            *guard = Some(result);
        }
        slot.done.notify_all();
        shared.completed.inc();
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.work.notify_all();
        // The serve layer started the trace at admission, so it ends
        // it here — total = the same admission→completion span the
        // latency histogram records.
        if let Some(t) = trace {
            shared.obs.tracer.finish(t);
        }
    });
}

/// Submits a commit through the bounded [`IndexService::try_submit`]
/// path, sleeping out each `retry_after` hint on shard overload. After
/// `commit_retries` rejections the overload is propagated to the
/// client — admission control composes: the shard's bound backstops
/// the tenant queue's bound.
async fn commit_with_backoff(
    shared: &Arc<ServerShared>,
    exec: &Arc<Executor>,
    doc: &str,
    txn: Transaction,
    trace: Option<&Trace>,
) -> Result<Response, ServeError> {
    let mut last_retry_after = Duration::from_micros(100);
    for attempt in 0..=shared.config.commit_retries {
        // try_submit consumes its transaction; keep ours and hand the
        // shard a clone so a rejected attempt can be retried. The
        // trace (an Arc handle) rides into the pipeline, where the
        // group leader attributes queue-wait/WAL/fsync/publish stages
        // to it; this layer still owns and finishes it.
        match shared
            .service
            .try_submit_traced(doc, txn.clone(), trace.cloned())
        {
            Ok(ticket) => return Ok(Response::Commit(ticket.await?)),
            Err(IndexError::Overloaded { retry_after, .. }) => {
                last_retry_after = retry_after;
                if attempt < shared.config.commit_retries {
                    exec.sleep(retry_after).await;
                }
            }
            Err(other) => return Err(ServeError::Index(other)),
        }
    }
    Err(ServeError::Overloaded {
        retry_after: last_retry_after,
    })
}
