//! A hand-rolled multi-threaded async executor.
//!
//! No external runtime: a fixed pool of worker threads drains a shared
//! run queue of spawned tasks, re-polling a task whenever its [`Waker`]
//! fires. A task is an `async move` block boxed as a `'static` future —
//! futures that borrow (like the index service's `CommitTicket`) are
//! made spawnable by having the block own an `Arc` of what they borrow.
//!
//! Timers integrate through the [`TimerWheel`]: [`Executor::sleep`]
//! parks the task's waker on the wheel, and every worker advances the
//! wheel to the injected [`Clock`]'s current reading each scheduling
//! round. With a [`ManualClock`](crate::clock::ManualClock) that makes
//! time — and everything downstream of it, like admission-control
//! backoff — fully test-controlled.
//!
//! Wakeup correctness hinges on a small per-task state machine
//! (`IDLE`/`QUEUED`/`RUNNING`/`NOTIFIED`): a wake during a poll marks
//! the task `NOTIFIED` instead of double-queueing it, and the worker
//! re-queues after the poll returns. A task is never polled by two
//! workers at once.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::clock::{Clock, MonotonicClock};
use crate::timer::TimerWheel;

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Task {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    exec: Weak<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        if let Some(shared) = self.exec.upgrade() {
                            shared.enqueue(Arc::clone(self));
                        }
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // The polling worker re-queues on our behalf.
                        return;
                    }
                }
                // Already queued or notified: the wake is coalesced.
                _ => return,
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
    live_tasks: AtomicUsize,
    idle_done: Condvar,
    clock: Arc<dyn Clock>,
    wheel: TimerWheel,
}

impl Shared {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
        self.available.notify_one();
    }
}

/// The worker-pool executor; see the module docs.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field(
                "live_tasks",
                &self.shared.live_tasks.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl Executor {
    /// An executor with `workers` threads (clamped to ≥ 1) driven by
    /// the production [`MonotonicClock`].
    pub fn new(workers: usize) -> Executor {
        Executor::with_clock(workers, Arc::new(MonotonicClock::new()))
    }

    /// An executor over an injected clock — pass a
    /// [`ManualClock`](crate::clock::ManualClock) for deterministic
    /// timer control in tests.
    pub fn with_clock(workers: usize, clock: Arc<dyn Clock>) -> Executor {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live_tasks: AtomicUsize::new(0),
            idle_done: Condvar::new(),
            clock,
            wheel: TimerWheel::new(Duration::from_micros(100)),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xvi-serve-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// The executor's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.shared.clock
    }

    /// Spawns a future onto the pool. The future must be `'static`:
    /// wrap borrows in an `async move` block that owns an `Arc`.
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        self.shared.live_tasks.fetch_add(1, Ordering::SeqCst);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            state: AtomicU8::new(QUEUED),
            exec: Arc::downgrade(&self.shared),
        });
        self.shared.enqueue(task);
    }

    /// A future resolving once `dur` has elapsed on the executor's
    /// clock. Must be awaited from a task on this executor (the wheel
    /// is only advanced by its workers).
    pub fn sleep(&self, dur: Duration) -> Sleep {
        Sleep {
            shared: Arc::clone(&self.shared),
            deadline_ns: self
                .shared
                .clock
                .now_ns()
                .saturating_add(u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX)),
            parked: false,
        }
    }

    /// Number of spawned tasks that have not finished.
    pub fn live_tasks(&self) -> usize {
        self.shared.live_tasks.load(Ordering::SeqCst)
    }

    /// Blocks until every spawned task has finished. Intended for
    /// drain/shutdown paths, not steady-state use.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        while self.shared.live_tasks.load(Ordering::SeqCst) != 0 {
            let (g, _) = self
                .shared
                .idle_done
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    /// Stops the workers and joins them. Unfinished tasks are dropped.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        // Fire due timers first so woken sleepers get into the queue
        // this round; wake outside the wheel lock.
        for w in shared.wheel.advance_to(shared.clock.now_ns()) {
            w.wake();
        }
        let task = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                // A bounded wait so parked timers (and a ManualClock
                // advanced from outside) are still noticed promptly.
                let (g, _) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                q = g;
                if shared.wheel.parked() > 0 {
                    drop(q);
                    for w in shared.wheel.advance_to(shared.clock.now_ns()) {
                        w.wake();
                    }
                    q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                }
            }
        };
        poll_task(&shared, task);
    }
}

fn poll_task(shared: &Shared, task: Arc<Task>) {
    task.state.store(RUNNING, Ordering::Release);
    let waker = Waker::from(Arc::clone(&task));
    let mut cx = Context::from_waker(&waker);
    // Take the future out so a reentrant wake never contends on the
    // future lock; the state machine guarantees exclusive polling.
    let mut fut = {
        let mut slot = task.future.lock().unwrap_or_else(|e| e.into_inner());
        match slot.take() {
            Some(f) => f,
            None => return, // already completed
        }
    };
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(()) => {
            task.state.store(IDLE, Ordering::Release);
            if shared.live_tasks.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last task done: wake wait_idle.
                let _q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                shared.idle_done.notify_all();
            }
        }
        Poll::Pending => {
            *task.future.lock().unwrap_or_else(|e| e.into_inner()) = Some(fut);
            // If a wake arrived mid-poll we were moved to NOTIFIED:
            // re-queue. Otherwise transition RUNNING → IDLE and let
            // the next wake queue us.
            if task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                task.state.store(QUEUED, Ordering::Release);
                shared.enqueue(task);
            }
        }
    }
}

/// Future returned by [`Executor::sleep`].
pub struct Sleep {
    shared: Arc<Shared>,
    deadline_ns: u64,
    parked: bool,
}

impl std::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleep")
            .field("deadline_ns", &self.deadline_ns)
            .finish()
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.shared.clock.now_ns() >= self.deadline_ns {
            return Poll::Ready(());
        }
        // Park on every pending poll: the wheel holds stale wakers
        // harmlessly (waking a completed task is a no-op).
        self.shared
            .wheel
            .schedule(self.deadline_ns, cx.waker().clone());
        self.parked = true;
        // Re-check: the clock may have crossed the deadline between
        // the first check and parking; the wheel's cursor may already
        // be past our tick in that window.
        if self.shared.clock.now_ns() >= self.deadline_ns {
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawned_tasks_run_to_completion() {
        let ex = Executor::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            ex.spawn(async move {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        ex.wait_idle();
        assert_eq!(hits.load(Ordering::SeqCst), 64);
        ex.shutdown();
    }

    #[test]
    fn sleep_fires_only_when_manual_clock_advances() {
        let clock = Arc::new(ManualClock::new());
        let ex = Executor::with_clock(2, Arc::clone(&clock) as Arc<dyn Clock>);
        let done = Arc::new(AtomicBool::new(false));
        {
            let done = Arc::clone(&done);
            let sleep = ex.sleep(Duration::from_millis(10));
            ex.spawn(async move {
                sleep.await;
                done.store(true, Ordering::SeqCst);
            });
        }
        std::thread::sleep(Duration::from_millis(20));
        assert!(!done.load(Ordering::SeqCst), "slept on a frozen clock");
        clock.advance(Duration::from_millis(10));
        ex.wait_idle();
        assert!(done.load(Ordering::SeqCst));
        ex.shutdown();
    }

    #[test]
    fn chained_sleeps_and_cross_task_wakes() {
        let ex = Executor::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (i, ms) in [(0u32, 6u64), (1, 2), (2, 4)] {
            let order = Arc::clone(&order);
            let sleep = ex.sleep(Duration::from_millis(ms));
            ex.spawn(async move {
                sleep.await;
                order.lock().unwrap().push(i);
            });
        }
        ex.wait_idle();
        let got = order.lock().unwrap().clone();
        assert_eq!(got, vec![1, 2, 0], "sleeps resolve in deadline order");
        ex.shutdown();
    }
}
