//! Config-driven streaming exports.
//!
//! An [`ExportSpec`] is parsed from a compact config string — e.g.
//! `format=csv; columns=doc,node,name,value; lookup=equi:Arthur;
//! header=true` — and evaluated against a pinned [`ServiceSnapshot`],
//! so an export is a consistent cut across every document even while
//! commits keep landing. Rows are **streamed** through any
//! [`io::Write`]: nothing is materialised beyond the current row, so
//! exporting a multi-gigabyte index costs constant memory.
//!
//! Supported formats: `csv` (RFC-4180 quoting, optional header),
//! `json` (one streamed array of objects) and `jsonl` (one object per
//! line). Non-finite doubles render as `null` in JSON output and as
//! their text form (`NaN`, `inf`, `-inf`) in CSV.

use std::io::{self, Write};

use xvi_index::{Lookup, ServiceSnapshot};
use xvi_xml::{Document, NodeId, NodeKind};

/// Output encoding of an export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// Comma-separated values with RFC-4180 quoting.
    Csv,
    /// A single JSON array of row objects.
    Json,
    /// One JSON object per line (newline-delimited JSON).
    Jsonl,
}

/// A selectable output column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// The document id.
    Doc,
    /// The node's arena index.
    Node,
    /// The node's name (element/attribute), empty otherwise.
    Name,
    /// The node kind (`element`, `text`, …).
    Kind,
    /// The node's XDM string value.
    Value,
    /// The string value parsed as a double (`NaN` when not numeric).
    Double,
    /// The document snapshot's commit version.
    Version,
}

impl Column {
    fn name(self) -> &'static str {
        match self {
            Column::Doc => "doc",
            Column::Node => "node",
            Column::Name => "name",
            Column::Kind => "kind",
            Column::Value => "value",
            Column::Double => "double",
            Column::Version => "version",
        }
    }
}

/// A malformed export config string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportParseError(String);

impl std::fmt::Display for ExportParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid export spec: {}", self.0)
    }
}

impl std::error::Error for ExportParseError {}

fn err(msg: impl Into<String>) -> ExportParseError {
    ExportParseError(msg.into())
}

/// A parsed export configuration; see the module docs.
#[derive(Debug, Clone)]
pub struct ExportSpec {
    /// Output encoding.
    pub format: ExportFormat,
    /// Columns, in output order.
    pub columns: Vec<Column>,
    /// Row filter: only nodes matching this lookup are exported.
    /// `None` exports every node in document order.
    pub lookup: Option<Lookup>,
    /// Whether CSV output starts with a header row.
    pub header: bool,
}

impl ExportSpec {
    /// Parses a `key=value; key=value` config string.
    ///
    /// Keys: `format` (`csv`|`json`|`jsonl`, required), `columns`
    /// (comma-separated, default `doc,node,value`), `lookup`
    /// (`equi:V`, `range:LO..HI`, `contains:V`, `wildcard:P`,
    /// `xpath:Q`; default all nodes), `header` (`true`|`false`,
    /// default `true`, CSV only).
    pub fn parse(spec: &str) -> Result<ExportSpec, ExportParseError> {
        let mut format = None;
        let mut columns = vec![Column::Doc, Column::Node, Column::Value];
        let mut lookup = None;
        let mut header = true;
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got {part:?}")))?;
            match (key.trim(), value.trim()) {
                ("format", "csv") => format = Some(ExportFormat::Csv),
                ("format", "json") => format = Some(ExportFormat::Json),
                ("format", "jsonl") => format = Some(ExportFormat::Jsonl),
                ("format", other) => return Err(err(format!("unknown format {other:?}"))),
                ("columns", list) => {
                    columns = list
                        .split(',')
                        .map(|c| match c.trim() {
                            "doc" => Ok(Column::Doc),
                            "node" => Ok(Column::Node),
                            "name" => Ok(Column::Name),
                            "kind" => Ok(Column::Kind),
                            "value" => Ok(Column::Value),
                            "double" => Ok(Column::Double),
                            "version" => Ok(Column::Version),
                            other => Err(err(format!("unknown column {other:?}"))),
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if columns.is_empty() {
                        return Err(err("columns list is empty"));
                    }
                }
                ("lookup", l) => lookup = Some(parse_lookup(l)?),
                ("header", "true") => header = true,
                ("header", "false") => header = false,
                ("header", other) => {
                    return Err(err(format!("header must be true|false, got {other:?}")))
                }
                (key, _) => return Err(err(format!("unknown key {key:?}"))),
            }
        }
        Ok(ExportSpec {
            format: format.ok_or_else(|| err("missing required key `format`"))?,
            columns,
            lookup,
            header,
        })
    }

    /// Streams the export over `snapshot` into `out`, returning the
    /// number of data rows written. Documents are visited in id order;
    /// within a document, matched nodes in the lookup's result order
    /// (document order for full exports).
    pub fn stream(&self, snapshot: &ServiceSnapshot, out: &mut impl Write) -> io::Result<u64> {
        let mut docs: Vec<_> = snapshot.iter().collect();
        docs.sort_by(|a, b| a.0.cmp(b.0));

        let mut rows = 0u64;
        if self.format == ExportFormat::Csv && self.header {
            let names: Vec<&str> = self.columns.iter().map(|c| c.name()).collect();
            writeln!(out, "{}", names.join(","))?;
        }
        if self.format == ExportFormat::Json {
            out.write_all(b"[")?;
        }
        for (doc_id, snap) in docs {
            let doc = snap.document();
            let nodes: Vec<NodeId> = match &self.lookup {
                Some(l) => snap.query(l).unwrap_or_default(),
                None => doc.descendants_or_self(doc.document_node()).collect(),
            };
            for node in nodes {
                match self.format {
                    ExportFormat::Csv => {
                        for (i, col) in self.columns.iter().enumerate() {
                            if i > 0 {
                                out.write_all(b",")?;
                            }
                            write_csv_field(
                                out,
                                &self.cell(*col, doc_id, doc, node, snap.version()),
                            )?;
                        }
                        out.write_all(b"\n")?;
                    }
                    ExportFormat::Json | ExportFormat::Jsonl => {
                        if self.format == ExportFormat::Json {
                            if rows > 0 {
                                out.write_all(b",")?;
                            }
                            out.write_all(b"\n  ")?;
                        }
                        self.write_json_row(out, doc_id, doc, node, snap.version())?;
                        if self.format == ExportFormat::Jsonl {
                            out.write_all(b"\n")?;
                        }
                    }
                }
                rows += 1;
            }
        }
        if self.format == ExportFormat::Json {
            if rows > 0 {
                out.write_all(b"\n")?;
            }
            out.write_all(b"]\n")?;
        }
        out.flush()?;
        Ok(rows)
    }

    fn cell(
        &self,
        col: Column,
        doc_id: &str,
        doc: &Document,
        node: NodeId,
        version: u64,
    ) -> String {
        match col {
            Column::Doc => doc_id.to_string(),
            Column::Node => node.index().to_string(),
            Column::Name => doc.name(node).unwrap_or("").to_string(),
            Column::Kind => kind_name(doc.kind(node)).to_string(),
            Column::Value => doc.string_value(node),
            Column::Double => format_f64_text(parse_double(doc, node)),
            Column::Version => version.to_string(),
        }
    }

    fn write_json_row(
        &self,
        out: &mut impl Write,
        doc_id: &str,
        doc: &Document,
        node: NodeId,
        version: u64,
    ) -> io::Result<()> {
        out.write_all(b"{")?;
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write!(out, "\"{}\":", col.name())?;
            match col {
                Column::Node => write!(out, "{}", node.index())?,
                Column::Version => write!(out, "{version}")?,
                Column::Double => {
                    let v = parse_double(doc, node);
                    if v.is_finite() {
                        write!(out, "{v}")?;
                    } else {
                        // JSON has no NaN/Infinity literals.
                        out.write_all(b"null")?;
                    }
                }
                other => write_json_string(out, &self.cell(*other, doc_id, doc, node, version))?,
            }
        }
        out.write_all(b"}")?;
        Ok(())
    }
}

fn parse_lookup(spec: &str) -> Result<Lookup, ExportParseError> {
    let (kind, arg) = spec
        .split_once(':')
        .ok_or_else(|| err(format!("lookup must be kind:arg, got {spec:?}")))?;
    match kind.trim() {
        "equi" => Ok(Lookup::equi(arg)),
        "contains" => Ok(Lookup::contains(arg)),
        "wildcard" => Ok(Lookup::wildcard(arg)),
        "xpath" => Lookup::xpath(arg).map_err(|e| err(format!("bad xpath lookup: {e}"))),
        "range" => {
            let (lo, hi) = arg
                .split_once("..")
                .ok_or_else(|| err(format!("range must be LO..HI, got {arg:?}")))?;
            let lo: f64 = lo
                .trim()
                .parse()
                .map_err(|_| err(format!("bad range low bound {lo:?}")))?;
            let hi: f64 = hi
                .trim()
                .parse()
                .map_err(|_| err(format!("bad range high bound {hi:?}")))?;
            Ok(Lookup::range_f64(lo..=hi))
        }
        other => Err(err(format!("unknown lookup kind {other:?}"))),
    }
}

fn kind_name(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Document => "document",
        NodeKind::Element(_) => "element",
        NodeKind::Attribute { .. } => "attribute",
        NodeKind::Text(_) => "text",
        NodeKind::Comment(_) => "comment",
        NodeKind::Pi { .. } => "pi",
        NodeKind::Free => "free",
    }
}

fn parse_double(doc: &Document, node: NodeId) -> f64 {
    doc.string_value(node)
        .trim()
        .parse::<f64>()
        .unwrap_or(f64::NAN)
}

/// Text form of a double for CSV cells: finite values as Rust renders
/// them, non-finite as `NaN` / `inf` / `-inf`.
fn format_f64_text(v: f64) -> String {
    format!("{v}")
}

/// RFC-4180: quote fields containing the separator, a quote, or a
/// line break; escape quotes by doubling.
fn write_csv_field(out: &mut impl Write, field: &str) -> io::Result<()> {
    if field.contains([',', '"', '\n', '\r']) {
        out.write_all(b"\"")?;
        out.write_all(field.replace('"', "\"\"").as_bytes())?;
        out.write_all(b"\"")?;
    } else {
        out.write_all(field.as_bytes())?;
    }
    Ok(())
}

/// Minimal JSON string encoder: escapes quotes, backslashes and
/// control characters.
fn write_json_string(out: &mut impl Write, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_all(b"\"")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let spec = ExportSpec::parse(
            "format=csv; columns=doc,node,name,kind,value,double,version; \
             lookup=range:1..10; header=false",
        )
        .unwrap();
        assert_eq!(spec.format, ExportFormat::Csv);
        assert_eq!(spec.columns.len(), 7);
        assert!(!spec.header);
        assert!(matches!(spec.lookup, Some(Lookup::RangeF64(_))));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",                          // missing format
            "format=xml",                // unknown format
            "format=csv; columns=",      // empty columns
            "format=csv; columns=bogus", // unknown column
            "format=csv; lookup=equi",   // lookup without arg
            "format=csv; header=maybe",  // bad bool
            "format=csv; shape=round",   // unknown key
            "format csv",                // not key=value
        ] {
            assert!(ExportSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn csv_quoting_rules() {
        let mut buf = Vec::new();
        for (field, want) in [
            ("plain", "plain"),
            ("has,comma", "\"has,comma\""),
            ("has\"quote", "\"has\"\"quote\""),
            ("has\nnewline", "\"has\nnewline\""),
        ] {
            buf.clear();
            write_csv_field(&mut buf, field).unwrap();
            assert_eq!(String::from_utf8(buf.clone()).unwrap(), want);
        }
    }

    #[test]
    fn json_string_escaping() {
        let mut buf = Vec::new();
        write_json_string(&mut buf, "a\"b\\c\nd\te\u{1}f").unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
        );
    }
}
