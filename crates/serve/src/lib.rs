//! # xvi-serve — an async serving frontend for the index service
//!
//! The paper's service layer ([`xvi_index::IndexService`]) gives the
//! engine-side contract: non-blocking group-committed writes and
//! lock-free snapshot reads. This crate adds the *operational* layer a
//! deployment needs in front of it, built without an external runtime:
//!
//! * **A hand-rolled executor** ([`Executor`]) — a fixed worker pool
//!   polling spawned futures, with a hashed [`TimerWheel`] over an
//!   injectable [`Clock`] so backoff and timeouts are deterministic
//!   under test ([`ManualClock`]).
//! * **Admission control** — bounded per-tenant queues that reject
//!   with a typed [`ServeError::Overloaded`] carrying a suggested
//!   backoff, composed with [`xvi_index::IndexService::try_submit`]'s
//!   bounded shard queues underneath. An open-loop client learns about
//!   overload at the edge instead of through unbounded queueing delay.
//! * **Per-tenant fairness** — deficit-round-robin dispatch across
//!   tenant queues ([`Server`]), so one tenant offering 10× the load
//!   cannot starve the others: a cold tenant's tail latency stays
//!   within a constant factor of running alone.
//! * **Latency observability** — a lock-free log-bucketed
//!   [`LatencyHistogram`] (≤ 12.5% relative quantisation error)
//!   recording end-to-end latency per request, reported as
//!   p50/p90/p99/p999 through [`ServerStats`].
//! * **Streaming exports** ([`ExportSpec`]) — config-driven CSV /
//!   JSON / JSONL row streams evaluated against a pinned
//!   [`xvi_index::ServiceSnapshot`], constant-memory via any
//!   [`std::io::Write`].
//!
//! ```
//! use std::sync::Arc;
//! use xvi_index::{IndexService, Lookup, ServiceConfig};
//! use xvi_serve::{Request, Response, Server, ServerConfig};
//! use xvi_xml::Document;
//!
//! let service = Arc::new(IndexService::new(ServiceConfig::default()));
//! service.insert_document(
//!     "d1",
//!     Document::parse("<person><name>Arthur</name></person>").unwrap(),
//! );
//! let server = Server::new(service, ServerConfig::default());
//!
//! let mut txn = server.service().begin();
//! let doc = server.service().snapshot("d1").unwrap();
//! // equi() matches every node whose string value is "Arthur" (the
//! // whole ancestor chain here); updates target the text node.
//! let node = doc
//!     .query(&Lookup::equi("Arthur"))
//!     .unwrap()
//!     .into_iter()
//!     .find(|&n| doc.document().kind(n).has_direct_value())
//!     .unwrap();
//! txn.set_value(node, "Zaphod");
//! let ticket = server
//!     .submit("tenant-a", Request::Commit { doc: "d1".into(), txn })
//!     .unwrap();
//! assert!(matches!(ticket.wait(), Ok(Response::Commit(_))));
//!
//! let ticket = server
//!     .submit(
//!         "tenant-a",
//!         Request::Query { doc: "d1".into(), lookup: Lookup::equi("Zaphod") },
//!     )
//!     .unwrap();
//! let Ok(Response::Query(hits)) = ticket.wait() else { panic!() };
//! assert!(!hits.is_empty());
//! assert!(server.stats().latency.count() >= 2);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod export;
pub mod server;
pub mod timer;

// The clock and latency histogram started life in this crate and now
// live in `xvi-obs` so every layer can share them; re-exported here so
// existing `xvi_serve::{clock, histogram}` paths keep working.
pub use xvi_obs::{clock, histogram};

pub use executor::{Executor, Sleep};
pub use export::{Column, ExportFormat, ExportParseError, ExportSpec};
pub use server::{
    Request, Response, ResponseTicket, ServeError, Server, ServerConfig, ServerStats,
};
pub use timer::TimerWheel;
pub use xvi_obs::{Clock, HistogramSnapshot, LatencyHistogram, ManualClock, MonotonicClock};
