//! Smoke test for the experiment harness: the exact `table1` / `fig9` /
//! `fig10` / `fig11` logic at permille scale 1 (the `XVI_SCALE=1`
//! setting of the binaries), so the Figure 9-11 reproductions cannot
//! silently rot. Runtime correctness of the numbers is covered by the
//! paper_scenarios / end_to_end suites; here we only require that every
//! dataset generates, shreds, indexes, updates, and reports without
//! panicking.

use xvi_bench::experiments;

#[test]
fn table1_runs_at_tiny_scale() {
    experiments::run_table1(1);
}

#[test]
fn fig9_runs_at_tiny_scale() {
    experiments::run_fig9(1, 1);
}

#[test]
fn fig10_runs_at_tiny_scale() {
    experiments::run_fig10(1, 1);
}

#[test]
fn fig11_runs_at_tiny_scale() {
    experiments::run_fig11(1);
}

#[test]
fn concurrency_runs_at_tiny_scale() {
    // At permille 1 the experiment also verifies every document's
    // maintained indices against a fresh rebuild after each cell.
    experiments::run_concurrency(1, 1);
}

#[test]
fn pipelined_concurrency_runs_at_tiny_scale() {
    // Same verification applies per depth; the >= 2x speedup claim is
    // a release-mode property at realistic scales, so here we only
    // require the sweep to run and stay consistent.
    experiments::run_pipelined(1, 1);
}

#[test]
fn cow_publish_runs_at_tiny_scale() {
    // At permille 1 every document size also verifies the maintained
    // indices against a fresh rebuild; the >= 5x shared-vs-deep claim
    // is a release-mode property at realistic scales.
    experiments::run_cow(1, 1);
}

#[test]
fn wal_runs_at_tiny_scale() {
    // At permille 1 every document size also drops and reopens the
    // WAL-backed service, checking recovery restores the version count
    // and verifiable indices; the ~flat-latency claim is a
    // release-mode property at realistic scales.
    experiments::run_wal(1, 1);
}

#[test]
fn aggregates_runs_at_tiny_scale() {
    // Every cell asserts the summary-derived exact count identical to
    // the materialised scan, histogram bounds containing it, and the
    // 2·depth+1 probe budget; the speedup headline is a release-mode
    // property at realistic scales.
    experiments::run_aggregates(1, 1);
}

#[test]
fn planner_runs_at_tiny_scale() {
    // Every planner-experiment cell asserts that cost-based,
    // last-predicate and scan evaluations return identical results;
    // the >= 2x cost-over-last claim is a release-mode property at
    // realistic scales.
    experiments::run_planner(1, 1);
}

#[test]
fn serve_runs_at_tiny_scale() {
    // The open-loop serving sweep, including its built-in assertions:
    // the unbounded top rate must shed load with typed rejections, and
    // every admitted request must record exactly one latency sample.
    experiments::run_serve(1, 1);
}
