//! Cross-crate end-to-end tests: generated datasets through shredding,
//! indexing, querying and maintenance.

use xvi::datagen::{Dataset, UpdateWorkload};
use xvi::index::QueryEngine;
use xvi::prelude::*;

fn small(ds: Dataset) -> (Document, IndexManager) {
    let xml = ds.generate(15);
    let doc = Document::parse(&xml).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    (doc, idx)
}

/// Every stored hash annotation must equal the hash of the node's
/// actual string value — on every dataset shape.
#[test]
fn hash_annotations_are_consistent_on_all_datasets() {
    for ds in Dataset::paper_suite() {
        let (doc, idx) = small(ds);
        let mut checked = 0;
        for n in doc.descendants_or_self(doc.document_node()) {
            if matches!(
                doc.kind(n),
                xvi::xml::NodeKind::Comment(_) | xvi::xml::NodeKind::Pi { .. }
            ) {
                continue;
            }
            assert_eq!(
                idx.hash_of(n),
                Some(hash_str(&doc.string_value(n))),
                "{}: node {n:?}",
                ds.name()
            );
            checked += 1;
        }
        assert!(checked > 100, "{}: only {checked} nodes", ds.name());
    }
}

/// Index-accelerated and scan evaluation agree on every dataset for a
/// battery of queries.
#[test]
fn index_and_scan_agree_on_all_datasets() {
    let queries = [
        "//person[.//age = 42]",
        "//item[quantity >= 5]",
        "//facility[.//latitude < 30]",
        "//article[year = 1999]",
        "//ProteinEntry[.//year > 2000]",
        "//doc[wordcount < 100]",
        "//open_auction[current > 450]",
    ];
    for ds in Dataset::paper_suite() {
        let (doc, idx) = small(ds);
        for q in queries {
            let query = QueryEngine::parse(q).unwrap();
            assert_eq!(
                QueryEngine::evaluate(&doc, &idx, &query),
                QueryEngine::evaluate_scan(&doc, &query),
                "{}: {q}",
                ds.name()
            );
        }
    }
}

/// Batched random updates keep the index exactly equal to a rebuild,
/// on every dataset shape.
#[test]
fn updates_preserve_consistency_on_all_datasets() {
    for ds in Dataset::paper_suite() {
        let xml = ds.generate(10);
        let mut doc = Document::parse(&xml).unwrap();
        let mut idx = IndexManager::build(&doc, IndexConfig::default());
        for round in 0..3u64 {
            let w = UpdateWorkload::generate(&doc, 50, round);
            idx.update_values(&mut doc, w.as_pairs()).unwrap();
        }
        idx.verify_against(&doc)
            .unwrap_or_else(|e| panic!("{}: {e}", ds.name()));
    }
}

/// Serialize → reparse → rebuild gives the same index contents
/// (the document store round-trips everything the indices see).
#[test]
fn roundtrip_reindex_is_identical() {
    let (doc, idx) = small(Dataset::XMark(1));
    let text = xvi::xml::serialize::to_string(&doc);
    let doc2 = Document::parse(&text).unwrap();
    let idx2 = IndexManager::build(&doc2, IndexConfig::default());
    // Same multiset of (hash -> count) entries.
    let stats1 = idx.stats();
    let stats2 = idx2.stats();
    assert_eq!(stats1.string_entries, stats2.string_entries);
    assert_eq!(stats1.typed[0].states, stats2.typed[0].states);
    assert_eq!(stats1.typed[0].values, stats2.typed[0].values);
}

/// All five typed indices can be built together in one pass and serve
/// lookups on XMark data.
#[test]
fn all_types_on_xmark() {
    let xml = Dataset::XMark(1).generate(15);
    let doc = Document::parse(&xml).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::all());

    // Ages are integers.
    assert!(!idx
        .query(&doc, &Lookup::typed_range(XmlType::Integer, 18.0..80.0))
        .unwrap()
        .is_empty());
    // Bidder dates are dateTimes in 1998-2008.
    let lo = XmlType::DateTime.cast("1998-01-01T00:00:00Z").unwrap();
    let hi = XmlType::DateTime.cast("2009-01-01T00:00:00Z").unwrap();
    assert!(!idx
        .query(&doc, &Lookup::typed_range(XmlType::DateTime, lo..hi))
        .unwrap()
        .is_empty());
    // Prices are decimals/doubles.
    assert!(!idx
        .query(&doc, &Lookup::typed_range(XmlType::Decimal, 0.0..1e6))
        .unwrap()
        .is_empty());
    assert!(!idx
        .query(&doc, &Lookup::range_f64(0.0..1e6))
        .unwrap()
        .is_empty());
}
