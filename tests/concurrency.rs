//! Threaded stress test for the sharded index service: barrier-
//! synchronised writer threads race reader threads on one document,
//! and every reader-observed snapshot must be consistent with *some*
//! subset of the committed transactions.
//!
//! Because the write batches are disjoint and commits commute (§5.1),
//! the set of legal intermediate states is exactly the set of unions
//! of committed batches — so the test precomputes the root hash of
//! every subset and asserts each observed snapshot hashes to one of
//! them. A torn commit (a partially applied batch, or an index update
//! without the matching ancestor repair) would produce a hash outside
//! that set. The final state and all assertions are deterministic
//! regardless of thread interleaving, so the test is CI-safe at
//! `XVI_SCALE=1` with real parallelism.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use xvi::hash::hash_str;
use xvi::index::{IndexConfig, IndexManager, IndexService, ServiceConfig};
use xvi::prelude::*;

const WRITERS: usize = 5;
const TXNS_PER_WRITER: usize = 2;
const READERS: usize = 3;
const WRITES_PER_TXN: usize = 6;

fn scale() -> usize {
    std::env::var("XVI_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// 16 groups × 4 leaves = 64 text nodes, deep enough that every
/// transaction repairs shared ancestors (group + root + document).
fn base_doc() -> Document {
    let mut xml = String::from("<r>");
    for g in 0..16 {
        xml.push_str(&format!("<g{g}>"));
        for l in 0..4 {
            xml.push_str(&format!("<v>leaf{g}x{l}</v>"));
        }
        xml.push_str(&format!("</g{g}>"));
    }
    xml.push_str("</r>");
    Document::parse(&xml).unwrap()
}

/// The disjoint write batches: transaction `t` updates leaves
/// `t*WRITES_PER_TXN .. (t+1)*WRITES_PER_TXN`, each to a value no
/// other transaction writes.
fn transactions(doc: &Document) -> Vec<Vec<(NodeId, String)>> {
    let leaves: Vec<NodeId> = doc
        .descendants(doc.document_node())
        .filter(|&n| matches!(doc.kind(n), NodeKind::Text(_)))
        .collect();
    let total = WRITERS * TXNS_PER_WRITER;
    assert!(total * WRITES_PER_TXN <= leaves.len(), "document too small");
    (0..total)
        .map(|t| {
            (0..WRITES_PER_TXN)
                .map(|w| {
                    let leaf = t * WRITES_PER_TXN + w;
                    (leaves[leaf], format!("txn{t}w{w}"))
                })
                .collect()
        })
        .collect()
}

/// Root hash after applying the union of the batches in `mask` — the
/// state a reader may legally observe once those commits landed.
fn subset_hashes(
    doc: &Document,
    idx: &IndexManager,
    txns: &[Vec<(NodeId, String)>],
) -> HashSet<u32> {
    let root = doc.root_element().unwrap();
    let mut hashes = HashSet::new();
    for mask in 0u32..(1 << txns.len()) {
        let mut d = doc.clone();
        let mut i = idx.clone();
        let writes: Vec<(NodeId, &str)> = txns
            .iter()
            .enumerate()
            .filter(|(t, _)| mask & (1 << t) != 0)
            .flat_map(|(_, txn)| txn.iter().map(|(n, v)| (*n, v.as_str())))
            .collect();
        if !writes.is_empty() {
            i.update_values(&mut d, writes).unwrap();
        }
        hashes.insert(i.hash_of(root).unwrap().raw());
    }
    hashes
}

#[test]
fn readers_only_observe_commit_subsets() {
    let doc = base_doc();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let txns = transactions(&doc);
    let total_txns = txns.len();
    let allowed = Arc::new(subset_hashes(&doc, &idx, &txns));
    assert!(
        allowed.len() > total_txns,
        "subset states should be plentiful (disjoint batches)"
    );
    let final_hash = {
        let mut d = doc.clone();
        let mut i = idx.clone();
        let writes: Vec<(NodeId, &str)> = txns
            .iter()
            .flat_map(|t| t.iter().map(|(n, v)| (*n, v.as_str())))
            .collect();
        i.update_values(&mut d, writes).unwrap();
        i.hash_of(d.root_element().unwrap()).unwrap()
    };

    let service = Arc::new(IndexService::new(
        ServiceConfig::with_shards(4).with_max_group(4),
    ));
    service.insert_document("stress", doc);

    let running = Arc::new(AtomicBool::new(true));
    let start = Arc::new(Barrier::new(WRITERS + READERS));

    let writer_handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let service = Arc::clone(&service);
            let start = Arc::clone(&start);
            let batches: Vec<Vec<(NodeId, String)>> = (0..TXNS_PER_WRITER)
                .map(|k| txns[w * TXNS_PER_WRITER + k].clone())
                .collect();
            std::thread::spawn(move || {
                start.wait();
                for batch in batches {
                    let mut txn = service.begin();
                    let n = batch.len();
                    for (node, value) in batch {
                        txn.set_value(node, value);
                    }
                    assert_eq!(service.commit("stress", txn).unwrap().applied, n);
                }
            })
        })
        .collect();

    let reader_iterations = 200 * scale().clamp(1, 10);
    let reader_handles: Vec<_> = (0..READERS)
        .map(|_| {
            let service = Arc::clone(&service);
            let start = Arc::clone(&start);
            let allowed = Arc::clone(&allowed);
            let running = Arc::clone(&running);
            std::thread::spawn(move || {
                start.wait();
                let mut observed = HashSet::new();
                let mut i = 0usize;
                // Keep reading while the writers are active, and for a
                // fixed minimum afterwards so the final state is also
                // exercised.
                while i < reader_iterations || running.load(Ordering::Relaxed) {
                    i += 1;
                    let snap = service.snapshot("stress").unwrap();
                    let root = snap.document().root_element().unwrap();
                    let h = snap.index().hash_of(root).unwrap();
                    // 1. The snapshot is some union of committed
                    //    batches — never a torn state.
                    assert!(
                        allowed.contains(&h.raw()),
                        "observed hash {h:?} matches no commit subset"
                    );
                    // 2. The snapshot's index is coherent with the
                    //    snapshot's document.
                    assert_eq!(
                        h,
                        hash_str(&snap.document().string_value(root)),
                        "index hash diverged from the snapshotted document"
                    );
                    observed.insert(h.raw());
                }
                observed.len()
            })
        })
        .collect();

    // Collect writer outcomes before asserting on them: the readers
    // spin on `running`, so it must be cleared even when a writer
    // failed, or they would loop forever and bury the real failure.
    let writer_results: Vec<_> = writer_handles.into_iter().map(|h| h.join()).collect();
    running.store(false, Ordering::Relaxed);
    let mut distinct_states = 0usize;
    for h in reader_handles {
        distinct_states += h.join().expect("reader panicked");
    }
    for r in writer_results {
        r.expect("writer panicked");
    }
    // Readers saw at least the final state each (usually several
    // intermediate versions too, but that part is interleaving-
    // dependent, so only the lower bound is asserted).
    assert!(distinct_states >= READERS);

    assert_eq!(service.commit_count(), total_txns as u64);
    service
        .read("stress", |doc, idx| {
            let root = doc.root_element().unwrap();
            assert_eq!(idx.hash_of(root), Some(final_hash));
            idx.verify_against(doc).unwrap();
        })
        .unwrap();
}

/// Single thread, many tickets: a writer keeps every transaction in
/// flight at once via `submit`, reaps the tickets in a shuffled
/// order, and the final state must be byte-identical to a serial
/// replay of the same batches — the pipelined path cannot lose,
/// duplicate or reorder writes observably (the batches are disjoint,
/// so §5.1 commutativity promises exactly the serial outcome).
#[test]
fn single_thread_pipelined_tickets_match_serial_replay() {
    let doc = base_doc();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let txns = transactions(&doc);

    // Serial replay baseline: one `update_values` per transaction.
    let expected_root = {
        let mut d = doc.clone();
        let mut i = idx.clone();
        for t in &txns {
            let writes: Vec<(NodeId, &str)> = t.iter().map(|(n, v)| (*n, v.as_str())).collect();
            i.update_values(&mut d, writes).unwrap();
        }
        i.hash_of(d.root_element().unwrap()).unwrap()
    };

    // Small group limit so reaping spans several leader rounds.
    let service = IndexService::new(ServiceConfig::with_shards(2).with_max_group(3));
    service.insert_document("stress", doc);

    let mut tickets = Vec::new();
    for batch in &txns {
        let mut txn = service.begin();
        for (node, value) in batch {
            txn.set_value(*node, value.clone());
        }
        tickets.push((service.submit("stress", txn), batch.len()));
    }
    // All in flight, nothing published yet: submits do not block on
    // (or drive) the pipeline.
    assert_eq!(service.version_of("stress"), Some(0));
    assert!(tickets.iter().all(|(t, _)| !t.is_complete()));

    // Reap in a deterministic shuffled order.
    let mut order: Vec<usize> = (0..tickets.len()).collect();
    order.reverse();
    order.swap(0, tickets.len() / 2);
    let mut reaped = vec![false; tickets.len()];
    let mut indexed: Vec<Option<(xvi::index::CommitTicket, usize)>> =
        tickets.into_iter().map(Some).collect();
    for &i in &order {
        let (ticket, expected_len) = indexed[i].take().unwrap();
        let receipt = ticket.wait().unwrap();
        assert_eq!(receipt.applied, expected_len);
        assert!(receipt.version > 0);
        reaped[i] = true;
    }
    assert!(reaped.iter().all(|&r| r));

    assert_eq!(service.commit_count(), txns.len() as u64);
    assert_eq!(service.version_of("stress"), Some(txns.len() as u64));
    service
        .read("stress", |doc, idx| {
            assert_eq!(
                idx.hash_of(doc.root_element().unwrap()),
                Some(expected_root),
                "pipelined reap diverged from serial replay"
            );
            idx.verify_against(doc).unwrap();
        })
        .unwrap();
}

/// The same race driven through the single-document facade: the
/// `TransactionalStore` must expose identical semantics since it is a
/// thin wrapper over the service.
#[test]
fn transactional_store_facade_stays_consistent_under_races() {
    let doc = base_doc();
    let txns = transactions(&doc);
    let store = Arc::new(xvi::index::TransactionalStore::new(
        doc,
        IndexConfig::default(),
    ));
    let start = Arc::new(Barrier::new(txns.len()));
    let handles: Vec<_> = txns
        .iter()
        .cloned()
        .map(|batch| {
            let store = Arc::clone(&store);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let mut t = store.begin();
                for (node, value) in batch {
                    t.set_value(node, value);
                }
                start.wait();
                store.commit(t).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.commit_count(), txns.len() as u64);
    store.read(|doc, idx| idx.verify_against(doc).unwrap());
}
