//! Integration coverage for the two beyond-the-paper features through
//! the public facade: the §7 substring index and index persistence.

use xvi::datagen::Dataset;
use xvi::prelude::*;

#[test]
fn substring_search_on_wiki_urls() {
    let xml = Dataset::Wiki.generate(10);
    let doc = Document::parse(&xml).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::string_only().with_substring_index());

    // Every URL contains the common prefix.
    let all_urls = idx
        .query(&doc, &Lookup::contains("http://en.wikipedia.org/wiki/"))
        .unwrap();
    assert!(all_urls.len() > 100);
    for &n in &all_urls {
        assert!(doc
            .direct_value(n)
            .unwrap()
            .contains("http://en.wikipedia.org/wiki/"));
    }

    // A rarer needle narrows it down; results equal the naive scan.
    let fast = idx.query(&doc, &Lookup::contains("family_000000")).unwrap();
    let slow: Vec<NodeId> = doc
        .descendants(doc.document_node())
        .filter(|&n| {
            doc.direct_value(n)
                .is_some_and(|v| v.contains("family_000000"))
        })
        .collect();
    let mut slow = slow;
    slow.sort();
    assert_eq!(fast, slow);
}

#[test]
fn substring_survives_update_workloads() {
    let xml = Dataset::Dblp.generate(5);
    let mut doc = Document::parse(&xml).unwrap();
    let mut idx = IndexManager::build(&doc, IndexConfig::default().with_substring_index());
    let w = xvi::datagen::UpdateWorkload::generate(&doc, 100, 77);
    idx.update_values(&mut doc, w.as_pairs()).unwrap();
    idx.verify_against(&doc).unwrap();
    // A value written by the workload is findable by substring.
    if let Some((node, value)) = w.updates.iter().find(|(_, v)| v.len() >= 3) {
        assert!(idx
            .query(&doc, &Lookup::contains(value))
            .unwrap()
            .contains(node));
    }
}

#[test]
fn persistence_roundtrip_through_facade() {
    let xml = Dataset::EpaGeo.generate(5);
    let doc = Document::parse(&xml).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());

    let mut image = Vec::new();
    idx.save_to(&doc, &mut image).unwrap();
    let loaded = IndexManager::load_from(&doc, image.as_slice()).unwrap();
    loaded.verify_against(&doc).unwrap();
    assert_eq!(
        idx.query(&doc, &Lookup::range_f64(24.0..49.0))
            .unwrap()
            .len(),
        loaded
            .query(&doc, &Lookup::range_f64(24.0..49.0))
            .unwrap()
            .len()
    );
}

#[test]
fn persisted_image_is_compact() {
    let xml = Dataset::XMark(1).generate(20);
    let doc = Document::parse(&xml).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let mut image = Vec::new();
    idx.save_to(&doc, &mut image).unwrap();
    // The image stores ~8 bytes per string entry + ~14 per typed entry;
    // it must be well below the in-memory structures it reconstructs.
    let stats = idx.stats();
    assert!(image.len() < stats.string_bytes + stats.typed[0].bytes);
    assert!(image.len() > stats.string_entries * 8);
}
