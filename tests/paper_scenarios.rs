//! Integration tests pinning the paper's §1 motivating scenarios
//! end-to-end through the public facade.

use xvi::prelude::*;

/// §1: `//person[.//age = 42]` must match <age> nodes in *all* lexical
/// and structural variants: "42", "42.0", " +4.2E1", and the
/// mixed-content decomposition <decades>4</decades>2<years/>.
#[test]
fn age_42_in_all_its_forms() {
    let doc = Document::parse(
        "<persons>\
           <person><age>42</age></person>\
           <person><age>42.0</age></person>\
           <person><age> +4.2E1</age></person>\
           <person><age><decades>4</decades>2<years/></age></person>\
           <person><age>43</age></person>\
           <person><age>fortytwo</age></person>\
         </persons>",
    )
    .unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());

    let ages_42: Vec<NodeId> = idx
        .query(&doc, &Lookup::range_f64(42.0..=42.0))
        .unwrap()
        .into_iter()
        .filter(|&n| doc.name(n) == Some("age"))
        .collect();
    assert_eq!(ages_42.len(), 4, "all four lexical variants cast to 42");

    let q = QueryEngine::parse("//person[.//age = 42]").unwrap();
    let people = QueryEngine::evaluate(&doc, &idx, &q);
    assert_eq!(people.len(), 4);
    assert_eq!(people, QueryEngine::evaluate_scan(&doc, &q));
}

/// §1's critique of path-specific indices: the generic index answers
/// on paths that were never declared.
#[test]
fn no_path_configuration_needed() {
    let doc = Document::parse(
        "<catalog>\
           <book><price>9.99</price></book>\
           <dvd><cost>9.99</cost></dvd>\
           <toy discounted=\"9.99\"><tag>9.99</tag></toy>\
         </catalog>",
    )
    .unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    // One numeric lookup finds the value under <price>, <cost>, <tag>,
    // the attribute, and their text nodes — no xmlpattern declared.
    let hits = idx.query(&doc, &Lookup::range_f64(9.99..=9.99)).unwrap();
    assert!(hits.len() >= 7, "found {} value carriers", hits.len());
}

/// §1: an index on string values serves equality regardless of which
/// node *kind* carries the value (text, element, attribute).
#[test]
fn equality_across_node_kinds() {
    let doc = Document::parse(r#"<r><a>hello</a><b key="hello"/><c><d>hel</d><e>lo</e></c></r>"#)
        .unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let hits = idx.query(&doc, &Lookup::equi("hello")).unwrap();
    // <a>, its text, the attribute, and <c> (concatenated "hel"+"lo").
    assert_eq!(hits.len(), 4);
}

/// §4: the <weight> example — "78" ⧺ "." ⧺ "230" is the double 78.230.
#[test]
fn weight_mixed_content_range_lookup() {
    let doc = Document::parse("<weight><kilos>78</kilos>.<grams>230</grams></weight>").unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let weights = idx.query(&doc, &Lookup::range_f64(78.2..78.3)).unwrap();
    assert!(weights.iter().any(|&n| doc.name(n) == Some("weight")));
    // The lone "." text node is *potential* but carries no value.
    assert!(
        idx.typed_index(XmlType::Double).unwrap().stored_states()
            > idx.typed_index(XmlType::Double).unwrap().stored_values()
    );
}

/// dateTime is the paper's other highlighted type.
#[test]
fn datetime_range_index() {
    let doc = Document::parse(
        "<log>\
           <event at=\"2008-01-15T10:00:00Z\"><t>2008-06-30T12:00:00Z</t></event>\
           <event at=\"2009-01-15T10:00:00Z\"><t>2007-06-30T12:00:00Z</t></event>\
         </log>",
    )
    .unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::with_types(&[XmlType::DateTime]));
    let jan1_2008 = XmlType::DateTime.cast("2008-01-01T00:00:00Z").unwrap();
    let jan1_2009 = XmlType::DateTime.cast("2009-01-01T00:00:00Z").unwrap();
    let in_2008 = idx
        .query(
            &doc,
            &Lookup::typed_range(XmlType::DateTime, jan1_2008..jan1_2009),
        )
        .unwrap();
    // The attribute, the text node, the <t> element — and the first
    // <event> element itself, whose XDM string value is exactly its
    // descendant text "2008-06-30T12:00:00Z".
    assert_eq!(in_2008.len(), 4);
}

/// §5: subtree deletion is handled by re-running maintenance with the
/// parent as context; the root hash must be as if the subtree never
/// existed.
#[test]
fn deletion_scenario() {
    let mut doc = Document::parse("<person><name>Arthur</name><age>42</age></person>").unwrap();
    let mut idx = IndexManager::build(&doc, IndexConfig::default());
    let age = doc
        .descendants(doc.document_node())
        .find(|&n| doc.name(n) == Some("age"))
        .unwrap();
    idx.delete_subtree(&mut doc, age).unwrap();

    let person = doc.root_element().unwrap();
    assert_eq!(idx.hash_of(person), Some(hash_str("Arthur")));
    assert!(idx.query(&doc, &Lookup::range_f64(..)).unwrap().is_empty());
    idx.verify_against(&doc).unwrap();
}

/// The facade's combine/hash re-exports satisfy the §3 equations.
#[test]
fn facade_hash_algebra() {
    let h = combine(hash_str("Arthur"), hash_str("Dent"));
    assert_eq!(h, hash_str("ArthurDent"));
    assert_eq!(combine(HashValue::EMPTY, h), h);
}
