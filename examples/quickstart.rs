//! Quickstart: the paper's running example (Figure 1).
//!
//! Builds the "person" document, creates the self-tuned value indices
//! (no path, no type configuration), runs the motivating lookups from
//! §1, and performs the §3 update scenario.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xvi::prelude::*;

fn main() {
    // The document of paper Figure 1, mixed content included: the
    // string value of <age> is "42" even though it is split across
    // <decades>4</decades> and a loose text node "2".
    let mut doc = Document::parse(
        "<person>\
           <name><first>Arthur</first><family>Dent</family></name>\
           <birthday>1966-09-26</birthday>\
           <age><decades>4</decades>2<years/></age>\
           <weight><kilos>78</kilos>.<grams>230</grams></weight>\
         </person>",
    )
    .expect("well-formed XML");

    // One pass builds every configured index for the whole document.
    let mut idx = IndexManager::build(&doc, IndexConfig::default());

    // ── Equality lookup on string values ────────────────────────────
    // //person[first/text() = "Arthur"]
    let hits = idx.query(&doc, &Lookup::equi("Arthur")).unwrap();
    println!("nodes with string value \"Arthur\": {}", hits.len());
    // //*[fn:data(name) = "ArthurDent"] — element string values are
    // concatenations of descendant text.
    for n in idx.query(&doc, &Lookup::equi("ArthurDent")).unwrap() {
        println!(
            "  \"ArthurDent\" is the value of <{}>",
            doc.name(n).unwrap_or("?")
        );
    }

    // ── Range lookup on doubles, mixed content respected ────────────
    // //person[.//age = 42] matches <age> although no single text node
    // spells "42"; likewise <weight> = 78.230 across three nodes.
    for n in idx.query(&doc, &Lookup::range_f64(40.0..=80.0)).unwrap() {
        println!(
            "double in [40, 80]: <{}> = {}",
            doc.name(n).unwrap_or("#text"),
            doc.string_value(n)
        );
    }

    // ── The §3 update: "Dent" → "Prefect" ───────────────────────────
    // Only the changed leaf is re-hashed; every ancestor is recombined
    // from its children's *stored* hashes via C. ("Dent" matches both
    // the text node and its <family> parent — update the text node.)
    let dent = idx
        .query(&doc, &Lookup::equi("Dent"))
        .unwrap()
        .into_iter()
        .find(|&n| doc.kind(n).has_direct_value())
        .expect("the Dent text node exists");
    idx.update_value(&mut doc, dent, "Prefect")
        .expect("text node");
    assert!(idx
        .query(&doc, &Lookup::equi("ArthurDent"))
        .unwrap()
        .is_empty());
    assert_eq!(
        idx.query(&doc, &Lookup::equi("ArthurPrefect"))
            .unwrap()
            .len(),
        1
    );
    println!(
        "after update, <name> = {:?}",
        doc.string_value(doc.root_element().unwrap())
    );

    // The mini-XPath engine picks the index automatically:
    let q = QueryEngine::parse("//person[.//age = 42]").expect("query parses");
    let people = QueryEngine::evaluate(&doc, &idx, &q);
    println!("//person[.//age = 42] -> {} match(es)", people.len());
}
