//! The §5.1 protocol: transactions buffer value writes without
//! touching (or locking) any ancestor; commits repair ancestors from
//! the latest committed state. Because the combination function `C`
//! is associative and updates commute, concurrent commits converge to
//! the same index no matter the order.
//!
//! ```sh
//! cargo run --example transactional_updates
//! ```

use std::sync::Arc;

use xvi::datagen::Dataset;
use xvi::index::TransactionalStore;
use xvi::prelude::*;
use xvi::xml::NodeKind;

fn main() {
    let xml = Dataset::XMark(1).generate(50);
    let doc = Document::parse(&xml).expect("generated XML parses");

    // Collect some age text nodes to fight over.
    let targets: Vec<NodeId> = doc
        .descendants(doc.document_node())
        .filter(|&n| doc.name(n) == Some("age"))
        .filter_map(|age| doc.first_child(age))
        .filter(|&t| matches!(doc.kind(t), NodeKind::Text(_)))
        .take(64)
        .collect();
    println!("updating {} <age> values from 8 threads…", targets.len());

    let store = Arc::new(TransactionalStore::new(doc, IndexConfig::default()));

    let handles: Vec<_> = (0..8u64)
        .map(|thread| {
            let store = Arc::clone(&store);
            let targets = targets.clone();
            std::thread::spawn(move || {
                // Each thread commits several small transactions over
                // its slice of the targets — all of which share
                // ancestors up to the root, the case §5.1 is about.
                for (i, &node) in targets.iter().enumerate() {
                    if i as u64 % 8 != thread {
                        continue;
                    }
                    let mut txn = store.begin();
                    txn.set_value(node, format!("{}", 20 + (i % 60)));
                    store.commit(txn).expect("value node");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics");
    }

    println!("{} transactions committed", store.commit_count());

    // The store must be byte-identical to a from-scratch rebuild.
    store.read(|doc, idx| {
        idx.verify_against(doc)
            .expect("commutative commits converge");
        let adults = idx.query(doc, &Lookup::range_f64(20.0..=79.0)).unwrap();
        println!(
            "ages now in [20, 79]: {} nodes — index verified ✓",
            adults.len()
        );
    });
}
