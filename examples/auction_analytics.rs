//! Auction analytics on an XMark-shaped document: the self-tuned
//! indices accelerate ad-hoc value queries that were never declared in
//! advance — the paper's core pitch against DB2-style
//! `create index … xmlpattern` configuration.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use std::time::Instant;

use xvi::datagen::Dataset;
use xvi::prelude::*;

fn main() {
    // ~16 MB of auction data; tune down if you are in a hurry.
    let xml = Dataset::XMark(1).generate(500);
    let t0 = Instant::now();
    let doc = Document::parse(&xml).expect("generated XML parses");
    let shred = t0.elapsed();

    let t1 = Instant::now();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let build = t1.elapsed();
    let stats = doc.stats();
    println!(
        "shredded {} nodes in {:.0} ms, indexed in {:.0} ms",
        stats.total_nodes,
        shred.as_secs_f64() * 1000.0,
        build.as_secs_f64() * 1000.0
    );

    // Ad-hoc query 1: auctions whose current price sits in a band.
    // Nobody declared an index on //open_auction/current — the generic
    // double index covers it anyway.
    let q = QueryEngine::parse("//open_auction[current >= 495]").expect("parses");
    let (fast, t_fast) = timed(|| QueryEngine::evaluate(&doc, &idx, &q));
    let (slow, t_scan) = timed(|| QueryEngine::evaluate_scan(&doc, &q));
    assert_eq!(fast, slow);
    println!(
        "expensive open auctions: {} (index {:.2} ms vs scan {:.2} ms)",
        fast.len(),
        t_fast,
        t_scan
    );

    // Ad-hoc query 2: exact string match across *all* paths.
    let (hits, t_eq) = timed(|| idx.query(&doc, &Lookup::equi("Creditcard")).unwrap());
    println!(
        "nodes with value \"Creditcard\": {} ({t_eq:.2} ms)",
        hits.len()
    );

    // Ad-hoc query 3: people in a given age bracket.
    let q = QueryEngine::parse("//person[.//age >= 78]").expect("parses");
    let (seniors, t_age) = timed(|| QueryEngine::evaluate(&doc, &idx, &q));
    println!("people aged 78+: {} ({t_age:.2} ms)", seniors.len());

    // Storage: what did self-tuning cost?
    let s = idx.stats();
    println!(
        "index storage: string {:.1} MB ({} entries), double {:.1} MB ({} states / {} values)",
        s.string_bytes as f64 / 1048576.0,
        s.string_entries,
        s.typed[0].bytes as f64 / 1048576.0,
        s.typed[0].states,
        s.typed[0].values,
    );
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1000.0)
}
