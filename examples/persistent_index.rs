//! Index persistence: build once, save the index image, reload it
//! later with a bulk load instead of re-running the creation pass —
//! with a staleness guard so an image can never silently serve a
//! modified document.
//!
//! ```sh
//! cargo run --release --example persistent_index
//! ```

use std::time::Instant;

use xvi::datagen::Dataset;
use xvi::prelude::*;

fn main() -> std::io::Result<()> {
    let xml = Dataset::Dblp.generate(100);
    let mut doc = Document::parse(&xml).expect("generated XML parses");

    let t = Instant::now();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let build_ms = t.elapsed().as_secs_f64() * 1000.0;

    // Save the image (here to memory; any `Write` works).
    let mut image = Vec::new();
    idx.save_to(&doc, &mut image)?;
    println!(
        "built index in {build_ms:.0} ms; image is {:.1} MB",
        image.len() as f64 / 1048576.0
    );

    // Reload: a bulk load per B+tree, no hashing, no FSM runs.
    let t = Instant::now();
    let loaded = IndexManager::load_from(&doc, image.as_slice())?;
    let load_ms = t.elapsed().as_secs_f64() * 1000.0;
    println!(
        "reloaded in {load_ms:.0} ms ({:.1}x faster than building)",
        build_ms / load_ms
    );

    // Same answers, still updatable.
    assert_eq!(
        idx.query(&doc, &Lookup::range_f64(1999.0..=1999.0))
            .unwrap()
            .len(),
        loaded
            .query(&doc, &Lookup::range_f64(1999.0..=1999.0))
            .unwrap()
            .len()
    );
    let mut loaded = loaded;
    let year_text = loaded
        .query(&doc, &Lookup::range_f64(1999.0..=1999.0))
        .unwrap()[0];
    let year_text = doc
        .descendants_or_self(year_text)
        .find(|&n| doc.kind(n).has_direct_value())
        .unwrap_or(year_text);
    loaded
        .update_value(&mut doc, year_text, "2009")
        .expect("text node");
    loaded
        .verify_against(&doc)
        .expect("loaded index maintains correctly");
    println!("loaded index verified after an update ✓");

    // Staleness guard: the image no longer matches the mutated doc.
    match IndexManager::load_from(&doc, image.as_slice()) {
        Err(e) => println!("stale image correctly rejected: {e}"),
        Ok(_) => unreachable!("stale image must not load"),
    }
    Ok(())
}
