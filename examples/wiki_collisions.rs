//! Hash-stability demo (the Figure 11 story): URL-heavy data produces
//! multi-way hash collisions because the hash's write offset has
//! period 27 — and candidate verification keeps lookups exact anyway.
//!
//! ```sh
//! cargo run --release --example wiki_collisions
//! ```

use xvi::datagen::Dataset;
use xvi::hash::collisions::CollisionHistogram;
use xvi::hash::hash_str;
use xvi::prelude::*;
use xvi::xml::NodeKind;

fn main() {
    let xml = Dataset::Wiki.generate(100);
    let doc = Document::parse(&xml).expect("generated XML parses");

    // Collision histogram over all distinct text values.
    let mut hist = CollisionHistogram::new();
    for n in doc.descendants(doc.document_node()) {
        if let NodeKind::Text(t) = doc.kind(n) {
            hist.observe(t);
        }
    }
    println!(
        "{} distinct strings -> {} hash values ({:.2}% colliding, worst {}-way)",
        hist.distinct_strings(),
        hist.distinct_hashes(),
        hist.collision_rate() * 100.0,
        hist.max_multiplicity()
    );
    println!("distribution (k distinct strings per hash -> #hashes):");
    for (k, count) in hist.distribution() {
        println!("  k={k}: {count}");
    }

    // Exhibit one colliding pair: characters 27 positions apart swap.
    let filler = "x".repeat(26);
    let a = format!("http://en.wikipedia.org/A{filler}B.html");
    let b = format!("http://en.wikipedia.org/B{filler}A.html");
    assert_eq!(hash_str(&a), hash_str(&b));
    println!(
        "\nperiod-27 swap collision:\n  H({a:?})\n= H({b:?}) = {}",
        hash_str(&a)
    );

    // Verification makes lookups exact despite collisions: candidates
    // may be superset, results never are.
    let idx = IndexManager::build(&doc, IndexConfig::string_only());
    let mut false_positives = 0usize;
    let mut probes = 0usize;
    for n in doc.descendants(doc.document_node()).take(5000) {
        if let NodeKind::Text(t) = doc.kind(n) {
            probes += 1;
            let candidates = idx.equi_candidates(t);
            let verified = idx.query(&doc, &Lookup::equi(t)).unwrap();
            false_positives += candidates.len() - verified.len();
            assert!(verified.iter().all(|&m| doc.string_value(m) == *t));
        }
    }
    println!(
        "\n{probes} lookups: {false_positives} false-positive candidates, all removed by verification"
    );
}
