//! `xvi-cli` — load an XML document (from a file or a built-in
//! synthetic dataset), build the self-tuned value indices, and explore
//! them interactively.
//!
//! ```sh
//! cargo run --release --bin xvi-cli -- path/to/doc.xml
//! cargo run --release --bin xvi-cli -- --dataset xmark1 --scale 100
//! cargo run --release --bin xvi-cli -- query --dataset xmark1 --explain '//person[.//age = 42]'
//! cargo run --release --bin xvi-cli -- stats --dataset xmark1 --scale 100
//! cargo run --release --bin xvi-cli -- stress --threads 8 --ops 5000
//! cargo run --release --bin xvi-cli -- stress --threads 1 --pipeline 64
//! cargo run --release --bin xvi-cli -- stress --threads 4 --wal /tmp/xvi-wal
//! cargo run --release --bin xvi-cli -- stress --threads 4 --serve
//! cargo run --release --bin xvi-cli -- serve --docs 4 --export 'format=csv; columns=doc,node,value; lookup=equi:42'
//! cargo run --release --bin xvi-cli -- serve --ops 2000 --metrics-out /tmp/xvi-metrics.prom
//! cargo run --release --bin xvi-cli -- metrics --docs 4 --ops 2000
//! cargo run --release --bin xvi-cli -- metrics --json --out /tmp/metrics.json
//! cargo run --release --bin xvi-cli -- recover /tmp/xvi-wal --checkpoint
//! ```
//!
//! Then type `help` at the prompt (interactive mode), let the `query`
//! subcommand evaluate one mini-XPath query (with `--explain` showing
//! the cost-based plan and estimated vs. actual cardinalities per
//! candidate predicate), let the `stats` subcommand dump the per-index
//! `Statistics` (histograms, heavy hitters, q-gram table) and B+tree
//! `TreeStats` (pages/shared_pages/free_slots) of a loaded document,
//! or let the `stress` subcommand drive the sharded index service with
//! a mixed concurrent workload and report throughput **and latency
//! percentiles** (p50/p99 for commits and reads separately;
//! `--pipeline <depth>` keeps that many commits in flight per writer
//! via `submit`/`CommitTicket` instead of blocking; `--wal <dir>` runs
//! the same workload durably, group-fsyncing every commit batch into a
//! per-shard write-ahead log; `--serve` routes every operation through
//! the `xvi-serve` frontend — admission control, per-tenant DRR
//! fairness — and additionally reports the server-side `ServerStats`).
//! The `serve` subcommand hosts documents behind that frontend, drives
//! a short mixed workload, reports the latency percentiles, and — with
//! `--export` — streams a config-driven CSV/JSON/JSONL export of a
//! pinned service snapshot to stdout or `--out <file>`. The `recover`
//! subcommand reopens a WAL directory — checkpoint plus WAL replay —
//! and reports what survived; `--checkpoint` then folds the replayed
//! log into a fresh checkpoint.
//!
//! Observability: the `metrics` subcommand drives a traced mixed
//! workload through the serving stack and emits the unified metrics
//! registry — every layer's counters, gauges and latency histograms —
//! as a Prometheus text exposition (or `--json`), plus the flight
//! recorder's slowest-request breakdowns on stderr. `stress` and
//! `serve` accept `--metrics-out <path>` to dump the same snapshot
//! (Prometheus to `<path>`, JSON to `<path>.json`) after their run,
//! and the interactive REPL gains `metrics` (registry snapshot,
//! including per-tree storage gauges) and `trace` (flight recorder)
//! commands — every REPL query runs fully traced.

use std::collections::VecDeque;
use std::io::{BufRead, Write as _};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use xvi::datagen::{ConcurrentConfig, ConcurrentWorkload, Dataset, WorkloadOp};
use xvi::index::QueryEngine;
use xvi::obs::{Obs, RegistrySnapshot, Stage, Unit};
use xvi::prelude::*;
use xvi::xml::NodeKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stress") {
        match run_stress(&args[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: xvi-cli stress [--docs <n>] [--threads <n>] [--ops <n>] \
                     [--scale <permille>] [--write-pct <0-100>] [--group <n>] \
                     [--shards <n>] [--seed <n>] [--pipeline <depth>] [--wal <dir>] \
                     [--serve] [--metrics-out <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("serve") {
        match run_serve_cmd(&args[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: xvi-cli serve [--docs <n>] [--scale <permille>] [--shards <n>] \
                     [--ops <n>] [--export '<spec>'] [--out <file>] [--metrics-out <path>]\n\
                     export spec: format=csv|json|jsonl; columns=doc,node,name,kind,value,double,version; \
                     lookup=equi:V|range:LO..HI|contains:V|wildcard:P|xpath:Q; header=true|false"
                );
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("metrics") {
        match run_metrics_cmd(&args[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: xvi-cli metrics [--docs <n>] [--scale <permille>] [--shards <n>] \
                     [--ops <n>] [--trace-rate <0..1>] [--json] [--out <file>]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("recover") {
        match run_recover(&args[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("usage: xvi-cli recover <dir> [--checkpoint]");
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("query") {
        match run_query_cmd(&args[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: xvi-cli query [--explain] [--dataset <name> | <file.xml>] \
                     [--scale <permille>] '<mini-xpath>'"
                );
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("stats") {
        match run_stats_cmd(&args[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: xvi-cli stats [--dataset <name> | <file.xml>] [--scale <permille>]"
                );
                std::process::exit(2);
            }
        }
    }
    let (label, xml) = match parse_args(&args) {
        Ok(src) => src,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: xvi-cli <file.xml> | --dataset <xmark1|xmark2|xmark4|xmark8|epageo|dblp|psd|wiki> [--scale <permille>]"
            );
            std::process::exit(2);
        }
    };

    let t = Instant::now();
    let mut doc = match Document::parse(&xml) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("failed to parse {label}: {e}");
            std::process::exit(1);
        }
    };
    let parse_ms = t.elapsed().as_secs_f64() * 1000.0;

    let t = Instant::now();
    let mut idx = IndexManager::build(
        &doc,
        IndexConfig::with_types(&[XmlType::Double, XmlType::DateTime]).with_substring_index(),
    );
    let index_ms = t.elapsed().as_secs_f64() * 1000.0;

    let stats = doc.stats();
    println!(
        "loaded {label}: {} nodes ({} text, {} attrs) — shred {parse_ms:.0} ms, index {index_ms:.0} ms",
        stats.total_nodes, stats.text_nodes, stats.attribute_nodes
    );
    println!("type `help` for commands");

    // Every interactive request is traced (rate 1.0): `trace` shows the
    // flight recorder's stage breakdowns, `metrics` the registry.
    let obs = Obs::new();
    obs.tracer.set_sample_rate(1.0);

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("xvi> ");
        std::io::stdout().flush().ok();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let input = line.trim();
        let (cmd, rest) = input.split_once(' ').unwrap_or((input, ""));
        let rest = rest.trim();
        match cmd {
            "" => {}
            "quit" | "exit" | "q" => break,
            "help" => help(),
            "stats" => {
                print_stats(&doc, &idx);
                print_statistics(&idx);
            }
            "metrics" => repl_metrics(&idx, &obs),
            "trace" => {
                if rest == "clear" {
                    obs.tracer.recorder().clear();
                    println!("flight recorder cleared");
                } else {
                    print!("{}", obs.tracer.recorder().render());
                }
            }
            "query" | "scan" => run_query(&doc, &idx, cmd == "query", rest, &obs),
            "explain" => explain_query(&doc, &idx, rest),
            "eq" => timed_nodes("equi", &doc, &obs, rest, || {
                idx.query(&doc, &Lookup::equi(rest)).unwrap()
            }),
            "contains" => timed_nodes("contains", &doc, &obs, rest, || {
                idx.query(&doc, &Lookup::contains(rest)).unwrap()
            }),
            "like" => timed_nodes("wildcard", &doc, &obs, rest, || {
                idx.query(&doc, &Lookup::wildcard(rest)).unwrap()
            }),
            "range" => match parse_range(rest) {
                Some((lo, hi)) => timed_nodes("range", &doc, &obs, rest, || {
                    idx.query(&doc, &Lookup::range_f64(lo..=hi)).unwrap()
                }),
                None => println!("usage: range <lo> <hi>"),
            },
            "set" => match rest.split_once(' ') {
                Some((id, value)) => match id.parse::<usize>() {
                    Ok(i) => {
                        let node = NodeId::from_index(i);
                        let t = Instant::now();
                        match idx.update_value(&mut doc, node, value) {
                            Ok(()) => {
                                obs.registry
                                    .histogram(
                                        "xvi_repl_update_seconds",
                                        "Latency of REPL value updates",
                                        &[],
                                        Unit::Seconds,
                                    )
                                    .record(t.elapsed());
                                println!(
                                    "updated node {i} in {:.2} ms",
                                    t.elapsed().as_secs_f64() * 1000.0
                                );
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    Err(_) => println!("usage: set <node-id> <new value>"),
                },
                None => println!("usage: set <node-id> <new value>"),
            },
            "show" => match rest.parse::<usize>() {
                Ok(i) => show_node(&doc, NodeId::from_index(i)),
                Err(_) => println!("usage: show <node-id>"),
            },
            other => println!("unknown command `{other}` — try `help`"),
        }
    }
}

/// `query`: one-shot evaluation of a mini-XPath query over a file or
/// synthetic dataset, with `--explain` rendering the chosen plan.
fn run_query_cmd(args: &[String]) -> Result<(), String> {
    let mut explain = false;
    let mut source_args: Vec<String> = Vec::new();
    let mut query_str: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--explain" => {
                explain = true;
                i += 1;
            }
            "--dataset" | "--scale" => {
                source_args.push(args[i].clone());
                source_args.push(
                    args.get(i + 1)
                        .ok_or_else(|| format!("{} needs a value", args[i]))?
                        .clone(),
                );
                i += 2;
            }
            other
                if query_str.is_none() && (other.starts_with('/') && !other.ends_with(".xml")) =>
            {
                query_str = Some(other.to_string());
                i += 1;
            }
            other if other.ends_with(".xml") => {
                source_args.push(other.to_string());
                i += 1;
            }
            other => {
                if query_str.is_none() {
                    query_str = Some(other.to_string());
                } else {
                    return Err(format!("unexpected argument `{other}`"));
                }
                i += 1;
            }
        }
    }
    let q = query_str.ok_or("no query given")?;
    let (label, xml) = if source_args.is_empty() {
        parse_args(&["--dataset".to_string(), "xmark1".to_string()])?
    } else {
        parse_args(&source_args)?
    };
    let doc = Document::parse(&xml).map_err(|e| format!("failed to parse {label}: {e}"))?;
    let idx = IndexManager::build(
        &doc,
        IndexConfig::with_types(&[XmlType::Double, XmlType::DateTime]).with_substring_index(),
    );
    let query = QueryEngine::parse(&q).map_err(|e| e.to_string())?;
    println!("source: {label}");
    if explain {
        println!("{}", QueryEngine::explain(&doc, &idx, &query));
    }
    let t = Instant::now();
    let result = QueryEngine::evaluate(&doc, &idx, &query);
    let ms = t.elapsed().as_secs_f64() * 1000.0;
    preview(&doc, &result);
    println!("{} node(s) in {ms:.2} ms", result.len());
    Ok(())
}

fn explain_query(doc: &Document, idx: &IndexManager, q: &str) {
    match QueryEngine::parse(q) {
        Ok(query) => println!("{}", QueryEngine::explain(doc, idx, &query)),
        Err(e) => println!("error: {e}"),
    }
}

/// `stats`: build all indices over a document and dump the maintained
/// per-index `Statistics` plus each B+tree's `TreeStats`, then the
/// consolidated metrics-registry snapshot (service counters plus the
/// per-tree storage collector) in Prometheus text form.
fn run_stats_cmd(args: &[String]) -> Result<(), String> {
    let (label, xml) = if args.is_empty() {
        parse_args(&["--dataset".to_string(), "xmark1".to_string()])?
    } else {
        parse_args(args)?
    };
    let doc = Document::parse(&xml).map_err(|e| format!("failed to parse {label}: {e}"))?;
    // Host the document in a service so the registry's shard collector
    // and query-path counters cover it — one index build, via insert.
    let service = IndexService::new(ServiceConfig::with_shards(1).with_index(
        IndexConfig::with_types(&[XmlType::Double, XmlType::DateTime]).with_substring_index(),
    ));
    service.insert_document("doc", doc);
    println!("source: {label}");
    service
        .read("doc", |doc, idx| {
            print_stats(doc, idx);
            print_statistics(idx);
        })
        .expect("document just inserted");
    // A few representative probes so the query-path series are live.
    for lookup in [
        Lookup::equi("42"),
        Lookup::range_f64(10.0..=20.0),
        Lookup::contains("a"),
    ] {
        let _ = service.query("doc", &lookup);
    }
    println!("\nmetrics registry snapshot:");
    print!("{}", service.obs().registry.snapshot().to_prometheus());
    Ok(())
}

fn tree_line(label: &str, t: xvi::btree::TreeStats) {
    println!(
        "  {label}: {} entries, depth {}, {} leaves / {} internals, \
         {} pages ({} shared, {} free slots), root hash {:016x}",
        t.len, t.depth, t.leaves, t.internals, t.pages, t.shared_pages, t.free_slots, t.root_hash
    );
    let probes = t.cache_hits + t.cache_partial_hits + t.cache_misses;
    if probes > 0 {
        println!(
            "    descent cache: {} hits / {} partial / {} misses ({:.1}% resolved near the leaf)",
            t.cache_hits,
            t.cache_partial_hits,
            t.cache_misses,
            100.0 * (t.cache_hits + t.cache_partial_hits) as f64 / probes as f64
        );
    }
}

/// Dumps the statistics subsystem's view of every configured index:
/// histograms, heavy hitters, q-gram table, and the underlying
/// B+trees' storage shape.
fn print_statistics(idx: &IndexManager) {
    let stats = idx.statistics();
    if let (Some(h), Some(s)) = (&stats.string, idx.string_index()) {
        println!(
            "string statistics: {} entries, {} distinct hashes, {} heavy hitter(s) \
             (threshold {})",
            h.total(),
            h.distinct(),
            h.heavy_hitters(),
            xvi::index::EquiHistogram::HEAVY_MIN
        );
        tree_line("hash tree", s.tree_stats());
        if let Some(r) = stats.string_root {
            println!(
                "  root summary: {} entries, sequence hash {:016x}",
                r.entries, r.hash
            );
        }
    }
    for (ty, h) in &stats.typed {
        println!(
            "{} statistics: equi-depth histogram, {} bucket(s) over {} value(s)",
            ty.name(),
            h.buckets(),
            h.total()
        );
        if let Some(t) = idx.typed_index(*ty) {
            tree_line("value tree", t.value_tree_stats());
            tree_line("node tree", t.node_tree_stats());
        }
        if let Some((_, r)) = stats.typed_roots.iter().find(|(t, _)| t == ty) {
            println!(
                "  root summary: {} entries, sequence hash {:016x}",
                r.entries, r.hash
            );
        }
    }
    if let (Some(g), Some(s)) = (&stats.substring, idx.substring_index()) {
        println!(
            "substring statistics: {} distinct trigram(s), {} posting(s) over {} node(s)",
            g.distinct_grams(),
            g.total_postings(),
            s.indexed_nodes()
        );
        tree_line("posting tree", s.tree_stats());
    }
}

/// `metrics`: build a small served deployment, drive a traced mixed
/// workload through the full stack (serve → service → planner →
/// B+trees), and emit the unified registry snapshot — Prometheus text
/// by default, `--json` for the JSON document — to stdout or `--out`.
/// The flight recorder's slowest-request breakdowns go to stderr so
/// stdout stays a valid exposition document.
fn run_metrics_cmd(args: &[String]) -> Result<(), String> {
    let mut docs_n = 4usize;
    let mut scale = 10u32;
    let mut shards = 4usize;
    let mut ops = 2_000usize;
    let mut trace_rate = 1.0f64;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let val = |j: usize| -> Result<&String, String> {
            args.get(j)
                .ok_or_else(|| format!("{} needs a value", args[j - 1]))
        };
        if args[i] == "--json" {
            json = true;
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--docs" => docs_n = val(i + 1)?.parse().map_err(|e| format!("--docs: {e}"))?,
            "--scale" => scale = val(i + 1)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--shards" => shards = val(i + 1)?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--ops" => ops = val(i + 1)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--trace-rate" => {
                trace_rate = val(i + 1)?
                    .parse()
                    .map_err(|e| format!("--trace-rate: {e}"))?;
            }
            "--out" => out = Some(val(i + 1)?.clone()),
            other => return Err(format!("unknown metrics option `{other}`")),
        }
        i += 2;
    }
    if docs_n == 0 {
        return Err("--docs must be positive".into());
    }

    let suite = Dataset::paper_suite();
    eprintln!("generating and indexing {docs_n} documents at {scale}‰ …");
    let service = Arc::new(IndexService::new(
        ServiceConfig::with_shards(shards)
            .with_index(IndexConfig::default().with_substring_index()),
    ));
    service.obs().tracer.set_sample_rate(trace_rate);
    let mut value_nodes = Vec::new();
    for i in 0..docs_n {
        let xml = suite[i % suite.len()].generate(scale);
        let doc = Document::parse(&xml).expect("generated datasets parse");
        value_nodes.push(
            doc.descendants_or_self(doc.document_node())
                .find(|&n| doc.kind(n).has_direct_value())
                .expect("generated documents contain text"),
        );
        service.insert_document(format!("d{i}"), doc);
    }

    let server = Server::new(Arc::clone(&service), ServerConfig::default());
    eprintln!("driving a {ops}-request traced workload (2 tenants, mixed lookups, 10% writes) …");
    let xpath = Lookup::xpath("//person[.//age = 42]").expect("query parses");
    let mut tickets = Vec::new();
    for i in 0..ops {
        let doc_id = format!("d{}", i % docs_n);
        let request = match i % 10 {
            9 => {
                let mut txn = service.begin();
                txn.set_value(value_nodes[i % docs_n], format!("v{i}"));
                Request::Commit { doc: doc_id, txn }
            }
            3 => Request::Query {
                doc: doc_id,
                lookup: xpath.clone(),
            },
            6 => Request::Query {
                doc: doc_id,
                lookup: Lookup::equi("42"),
            },
            7 => Request::Query {
                doc: doc_id,
                lookup: Lookup::contains("ap"),
            },
            _ => Request::Query {
                doc: doc_id,
                lookup: Lookup::range_f64(10.0..=20.0),
            },
        };
        let tenant = if i % 2 == 0 { "even" } else { "odd" };
        match server.submit(tenant, request) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { retry_after }) => std::thread::sleep(retry_after),
            Err(e) => return Err(format!("metrics: {e}")),
        }
    }
    for t in &tickets {
        t.wait().map_err(|e| format!("metrics: {e}"))?;
    }
    server.shutdown();

    let snap = service.obs().registry.snapshot();
    eprintln!(
        "{} series in the registry snapshot",
        snap.series_names().len()
    );
    let body = if json {
        snap.to_json()
    } else {
        snap.to_prometheus()
    };
    match &out {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("--out {path}: {e}"))?;
            eprintln!("wrote snapshot to {path}");
        }
        None => print!("{body}"),
    }
    if service.obs().tracer.enabled() {
        eprintln!("--- flight recorder: slowest traced requests ---");
        eprint!("{}", service.obs().tracer.recorder().render());
    }
    Ok(())
}

/// Dumps a registry snapshot to `path` (Prometheus text exposition)
/// and `<path>.json` (the JSON document) — the `--metrics-out` tail of
/// the `stress` and `serve` subcommands.
fn write_metrics(snap: &RegistrySnapshot, path: &str) -> Result<(), String> {
    std::fs::write(path, snap.to_prometheus()).map_err(|e| format!("--metrics-out {path}: {e}"))?;
    let json_path = format!("{path}.json");
    std::fs::write(&json_path, snap.to_json())
        .map_err(|e| format!("--metrics-out {json_path}: {e}"))?;
    eprintln!(
        "wrote metrics snapshot ({} series) to {path} and {json_path}",
        snap.series_names().len()
    );
    Ok(())
}

/// `recover`: reopen a WAL-backed service directory — load the last
/// checkpoint (if any) and replay each shard's log, tolerating a torn
/// final record — then report what survived. With `--checkpoint`, fold
/// the replayed tail into a fresh checkpoint and truncate the logs.
fn run_recover(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut checkpoint = false;
    for arg in args {
        match arg.as_str() {
            "--checkpoint" => checkpoint = true,
            other if dir.is_none() && !other.starts_with("--") => dir = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let dir = dir.ok_or("no directory given")?;
    let t = Instant::now();
    let service = IndexService::open(ServiceConfig::default().with_wal(&dir))
        .map_err(|e| format!("{dir}: {e}"))?;
    let ms = t.elapsed().as_secs_f64() * 1000.0;
    println!(
        "recovered {} document(s) from {dir} in {ms:.0} ms \
         ({} committed write(s) on record)",
        service.doc_count(),
        service.commit_count()
    );
    for id in service.doc_ids() {
        let version = service.version_of(&id).expect("listed ids are present");
        let nodes = service
            .read(&id, |doc, idx| {
                idx.verify_against(doc)
                    .map_err(|e| format!("{id}: recovered index diverges: {e}"))?;
                Ok::<usize, String>(doc.stats().total_nodes)
            })
            .expect("listed ids are present")?;
        println!("  {id}: version {version}, {nodes} nodes, indices verified");
    }
    if checkpoint {
        let t = Instant::now();
        service.checkpoint().map_err(|e| format!("{dir}: {e}"))?;
        println!(
            "checkpointed and truncated the logs in {:.0} ms",
            t.elapsed().as_secs_f64() * 1000.0
        );
    }
    Ok(())
}

/// `stress`: host several synthetic documents in an [`IndexService`]
/// and hammer it with a zipf-skewed mixed reader/writer workload from
/// many threads, then report throughput and verify the indices.
/// `--pipeline <depth>` switches writers from blocking `commit` to
/// `submit` with up to `depth` tickets in flight each; `--wal <dir>`
/// makes every commit durable (group-fsynced WAL in `dir`) and
/// checkpoints the directory once the run verifies.
fn run_stress(args: &[String]) -> Result<(), String> {
    let mut docs_n = 8usize;
    let mut threads = 4usize;
    let mut ops = 5_000usize;
    let mut scale = 10u32;
    let mut write_pct = 20u32;
    let mut group = 64usize;
    let mut shards = 8usize;
    let mut seed = 42u64;
    let mut pipeline = 1usize;
    let mut wal: Option<String> = None;
    let mut serve = false;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let val = |j: usize| -> Result<&String, String> {
            args.get(j)
                .ok_or_else(|| format!("{} needs a value", args[j - 1]))
        };
        if args[i] == "--serve" {
            serve = true;
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--docs" => docs_n = val(i + 1)?.parse().map_err(|e| format!("--docs: {e}"))?,
            "--threads" => threads = val(i + 1)?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--ops" => ops = val(i + 1)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--scale" => scale = val(i + 1)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--write-pct" => {
                write_pct = val(i + 1)?
                    .parse()
                    .map_err(|e| format!("--write-pct: {e}"))?;
                if write_pct > 100 {
                    return Err("--write-pct must be 0-100".into());
                }
            }
            "--group" => group = val(i + 1)?.parse().map_err(|e| format!("--group: {e}"))?,
            "--shards" => shards = val(i + 1)?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--seed" => seed = val(i + 1)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--pipeline" => {
                pipeline = val(i + 1)?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?;
                if pipeline == 0 {
                    return Err("--pipeline must be at least 1".into());
                }
            }
            "--wal" => wal = Some(val(i + 1)?.clone()),
            "--metrics-out" => metrics_out = Some(val(i + 1)?.clone()),
            other => return Err(format!("unknown stress option `{other}`")),
        }
        i += 2;
    }
    if docs_n == 0 || threads == 0 || ops == 0 {
        return Err("--docs, --threads and --ops must be positive".into());
    }

    let suite = Dataset::paper_suite();
    println!("generating {docs_n} documents at {scale}‰ …");
    let docs: Vec<Document> = (0..docs_n)
        .map(|i| {
            let xml = suite[i % suite.len()].generate(scale);
            Document::parse(&xml).expect("generated datasets parse")
        })
        .collect();

    let config = ServiceConfig::with_shards(shards).with_max_group(group);
    let service = Arc::new(match &wal {
        Some(dir) => {
            let service = IndexService::open(config.with_wal(dir))
                .map_err(|e| format!("--wal {dir}: {e}"))?;
            println!(
                "durable mode: group-fsync WAL in {dir} ({} document(s) recovered)",
                service.doc_count()
            );
            service
        }
        None => IndexService::new(config),
    });
    let base_commits = service.commit_count();
    let t = Instant::now();
    for (i, doc) in docs.iter().enumerate() {
        service.insert_document(format!("d{i}"), doc.clone());
    }
    println!(
        "indexed {} documents in {:.0} ms ({} shards, group limit {group})",
        docs_n,
        t.elapsed().as_secs_f64() * 1000.0,
        shards
    );
    if pipeline > 1 {
        println!("pipelined commits: up to {pipeline} in flight per writer thread");
    }

    let workload = ConcurrentWorkload::generate(
        &docs,
        &ConcurrentConfig {
            ops,
            write_permille: write_pct * 10,
            writes_per_txn: 4,
            zipf_theta: 0.99,
        },
        seed,
    );
    let writes = workload.write_count();
    let shards_of_work = workload.into_shards(threads);

    // Precomputed so the timed loop does not allocate an id per op.
    let ids: Arc<Vec<String>> = Arc::new((0..docs_n).map(|i| format!("d{i}")).collect());
    // Client-observed latency, split by operation class. Commits in
    // pipelined mode are measured submit → reap (the whole in-flight
    // span), matching what a pipelined client experiences.
    let commit_hist = Arc::new(LatencyHistogram::new());
    let read_hist = Arc::new(LatencyHistogram::new());
    let server = serve.then(|| {
        Arc::new(Server::new(
            Arc::clone(&service),
            ServerConfig {
                workers: threads.clamp(2, 8),
                max_in_flight: (threads * pipeline).max(16),
                tenant_queue: (4 * pipeline).max(256),
                ..ServerConfig::default()
            },
        ))
    });
    let barrier = Arc::new(Barrier::new(threads));
    let t = Instant::now();
    let handles: Vec<_> = shards_of_work
        .into_iter()
        .enumerate()
        .map(|(tid, stream)| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let ids = Arc::clone(&ids);
            let commit_hist = Arc::clone(&commit_hist);
            let read_hist = Arc::clone(&read_hist);
            let server = server.clone();
            std::thread::spawn(move || {
                barrier.wait();
                if let Some(server) = server {
                    return drive_served(
                        &server,
                        &ids,
                        stream,
                        &tid.to_string(),
                        pipeline,
                        &commit_hist,
                        &read_hist,
                    );
                }
                let mut hits = 0usize;
                // In pipelined mode each writer keeps up to `pipeline`
                // submits in flight and reaps the oldest ticket only
                // when the window is full.
                let mut in_flight = VecDeque::new();
                for op in stream {
                    let id = &ids[op.doc()];
                    match op {
                        WorkloadOp::Write { writes, .. } => {
                            let mut txn = service.begin();
                            for (node, value) in writes {
                                txn.set_value(node, value);
                            }
                            let start = Instant::now();
                            if pipeline <= 1 {
                                service.commit(id, txn).expect("stress writes are valid");
                                commit_hist.record(start.elapsed());
                            } else {
                                in_flight.push_back((start, service.submit(id, txn)));
                                if in_flight.len() >= pipeline {
                                    let (start, ticket) =
                                        in_flight.pop_front().expect("window is full");
                                    ticket.wait().expect("stress writes are valid");
                                    commit_hist.record(start.elapsed());
                                }
                            }
                        }
                        WorkloadOp::ReadEqui { value, .. } => {
                            let start = Instant::now();
                            hits += service
                                .read(id, |doc, idx| {
                                    idx.query(doc, &Lookup::equi(&value)).unwrap().len()
                                })
                                .expect("stress documents are registered");
                            read_hist.record(start.elapsed());
                        }
                        WorkloadOp::ReadRange { lo, hi, .. } => {
                            let start = Instant::now();
                            hits += service
                                .read(id, |doc, idx| {
                                    idx.query(doc, &Lookup::range_f64(lo..=hi)).unwrap().len()
                                })
                                .expect("stress documents are registered");
                            read_hist.record(start.elapsed());
                        }
                    }
                }
                for (start, ticket) in in_flight {
                    ticket.wait().expect("stress writes are valid");
                    commit_hist.record(start.elapsed());
                }
                hits
            })
        })
        .collect();
    let mut total_hits = 0usize;
    for h in handles {
        total_hits += h.join().expect("stress worker panicked");
    }
    let elapsed = t.elapsed();

    println!(
        "{ops} ops ({writes} commits, {} reads, {total_hits} read hits) on {threads} threads \
         in {:.0} ms — {:.0} ops/s",
        ops - writes,
        elapsed.as_secs_f64() * 1000.0,
        ops as f64 / elapsed.as_secs_f64()
    );
    print_latency("commit latency", &commit_hist.snapshot());
    print_latency("read latency  ", &read_hist.snapshot());
    if let Some(server) = &server {
        let stats = server.stats();
        println!(
            "server: admitted={} rejected={} completed={} in-flight={} queue-depth={}",
            stats.admitted, stats.rejected, stats.completed, stats.in_flight, stats.queue_depth
        );
        print_latency("server latency", &stats.latency);
        server.shutdown();
    }
    assert_eq!(
        service.commit_count() - base_commits,
        writes as u64,
        "commit accounting diverged"
    );
    print!("verifying maintained indices against fresh rebuilds … ");
    std::io::stdout().flush().ok();
    for i in 0..docs_n {
        service
            .read(&format!("d{i}"), |doc, idx| {
                idx.verify_against(doc)
                    .unwrap_or_else(|e| panic!("d{i}: {e}"))
            })
            .expect("stress documents are registered");
    }
    println!("ok");
    if let Some(dir) = &wal {
        let t = Instant::now();
        service
            .checkpoint()
            .map_err(|e| format!("--wal {dir}: {e}"))?;
        println!(
            "checkpointed {dir} (logs truncated) in {:.0} ms",
            t.elapsed().as_secs_f64() * 1000.0
        );
    }
    if let Some(path) = &metrics_out {
        write_metrics(&service.obs().registry.snapshot(), path)?;
    }
    Ok(())
}

fn print_latency(label: &str, hist: &xvi::serve::HistogramSnapshot) {
    if hist.count() == 0 {
        return;
    }
    println!(
        "{label}: p50={:?} p90={:?} p99={:?} p999={:?} max={:?} (n={})",
        hist.percentile(0.50),
        hist.percentile(0.90),
        hist.percentile(0.99),
        hist.percentile(0.999),
        hist.max(),
        hist.count()
    );
}

/// The `--serve` worker loop of `stress`: the same workload stream,
/// but every operation goes through the serving frontend as tenant
/// `tid` — admission control, DRR dispatch — keeping up to `pipeline`
/// response tickets in flight.
fn drive_served(
    server: &Server,
    ids: &[String],
    stream: impl IntoIterator<Item = WorkloadOp>,
    tenant: &str,
    pipeline: usize,
    commit_hist: &LatencyHistogram,
    read_hist: &LatencyHistogram,
) -> usize {
    let mut hits = 0usize;
    let mut in_flight: VecDeque<(Instant, ResponseTicket)> = VecDeque::new();
    let reap = |(start, ticket): (Instant, ResponseTicket), hits: &mut usize| match ticket
        .wait()
        .expect("served stress requests succeed")
    {
        Response::Commit(_) => commit_hist.record(start.elapsed()),
        Response::Query(found) => {
            *hits += found.len();
            read_hist.record(start.elapsed());
        }
    };
    for op in stream {
        let id = ids[op.doc()].clone();
        let request = match op {
            WorkloadOp::Write { writes, .. } => {
                let mut txn = server.service().begin();
                for (node, value) in writes {
                    txn.set_value(node, value);
                }
                Request::Commit { doc: id, txn }
            }
            WorkloadOp::ReadEqui { value, .. } => Request::Query {
                doc: id,
                lookup: Lookup::equi(value),
            },
            WorkloadOp::ReadRange { lo, hi, .. } => Request::Query {
                doc: id,
                lookup: Lookup::range_f64(lo..=hi),
            },
        };
        let start = Instant::now();
        let ticket = loop {
            // A closed-loop client honours the server's backoff hint.
            match server.submit(tenant, request.clone()) {
                Ok(t) => break t,
                Err(ServeError::Overloaded { retry_after }) => std::thread::sleep(retry_after),
                Err(e) => panic!("serve stress: {e}"),
            }
        };
        in_flight.push_back((start, ticket));
        if in_flight.len() >= pipeline.max(1) {
            let entry = in_flight.pop_front().expect("window is full");
            reap(entry, &mut hits);
        }
    }
    for entry in in_flight {
        reap(entry, &mut hits);
    }
    hits
}

fn run_serve_cmd(args: &[String]) -> Result<(), String> {
    let mut docs_n = 4usize;
    let mut scale = 10u32;
    let mut shards = 4usize;
    let mut ops = 2_000usize;
    let mut export: Option<String> = None;
    let mut out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let val = |j: usize| -> Result<&String, String> {
            args.get(j)
                .ok_or_else(|| format!("{} needs a value", args[j - 1]))
        };
        match args[i].as_str() {
            "--docs" => docs_n = val(i + 1)?.parse().map_err(|e| format!("--docs: {e}"))?,
            "--scale" => scale = val(i + 1)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--shards" => shards = val(i + 1)?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--ops" => ops = val(i + 1)?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--export" => export = Some(val(i + 1)?.clone()),
            "--out" => out = Some(val(i + 1)?.clone()),
            "--metrics-out" => metrics_out = Some(val(i + 1)?.clone()),
            other => return Err(format!("unknown serve option `{other}`")),
        }
        i += 2;
    }
    if docs_n == 0 {
        return Err("--docs must be positive".into());
    }
    // Parse the export spec before doing any work, so a typo fails
    // fast instead of after the serving phase.
    let export = export
        .map(|s| ExportSpec::parse(&s).map_err(|e| e.to_string()))
        .transpose()?;

    let suite = Dataset::paper_suite();
    eprintln!("generating and indexing {docs_n} documents at {scale}‰ …");
    let service = Arc::new(IndexService::new(ServiceConfig::with_shards(shards)));
    let mut value_nodes = Vec::new();
    for i in 0..docs_n {
        let xml = suite[i % suite.len()].generate(scale);
        let doc = Document::parse(&xml).expect("generated datasets parse");
        value_nodes.push(
            doc.descendants_or_self(doc.document_node())
                .find(|&n| doc.kind(n).has_direct_value())
                .expect("generated documents contain text"),
        );
        service.insert_document(format!("d{i}"), doc);
    }

    let server = Server::new(Arc::clone(&service), ServerConfig::default());
    eprintln!("serving a {ops}-request mixed workload (2 tenants, 90/10 read/write) …");
    let mut tickets = Vec::new();
    for i in 0..ops {
        let doc_id = format!("d{}", i % docs_n);
        let request = if i % 10 == 9 {
            let mut txn = service.begin();
            txn.set_value(value_nodes[i % docs_n], format!("v{i}"));
            Request::Commit { doc: doc_id, txn }
        } else {
            Request::Query {
                doc: doc_id,
                lookup: Lookup::range_f64(10.0..=20.0),
            }
        };
        let tenant = if i % 2 == 0 { "even" } else { "odd" };
        match server.submit(tenant, request) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { retry_after }) => std::thread::sleep(retry_after),
            Err(e) => return Err(format!("serve: {e}")),
        }
    }
    for t in &tickets {
        t.wait().map_err(|e| format!("serve: {e}"))?;
    }
    let stats = server.stats();
    eprintln!(
        "server: admitted={} rejected={} completed={} (commit count {})",
        stats.admitted,
        stats.rejected,
        stats.completed,
        service.commit_count()
    );
    print_latency("latency", &stats.latency);
    server.shutdown();

    if let Some(spec) = export {
        // Pin one consistent cut across every document, then stream.
        let snapshot = service.snapshot_all();
        let rows = match &out {
            Some(path) => {
                let file = std::fs::File::create(path).map_err(|e| format!("--out {path}: {e}"))?;
                let mut w = std::io::BufWriter::new(file);
                spec.stream(&snapshot, &mut w).map_err(|e| e.to_string())?
            }
            None => {
                let stdout = std::io::stdout();
                let mut w = std::io::BufWriter::new(stdout.lock());
                spec.stream(&snapshot, &mut w).map_err(|e| e.to_string())?
            }
        };
        eprintln!(
            "exported {rows} rows{}",
            out.map(|p| format!(" to {p}")).unwrap_or_default()
        );
    }
    if let Some(path) = &metrics_out {
        write_metrics(&service.obs().registry.snapshot(), path)?;
    }
    Ok(())
}

fn parse_args(args: &[String]) -> Result<(String, String), String> {
    let mut dataset: Option<String> = None;
    let mut scale: u32 = 100;
    let mut file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                dataset = Some(args.get(i + 1).ok_or("--dataset needs a name")?.clone());
                i += 2;
            }
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--scale needs a number (permille)")?;
                i += 2;
            }
            other => {
                file = Some(other.to_string());
                i += 1;
            }
        }
    }
    if let Some(name) = dataset {
        let ds = match name.to_lowercase().as_str() {
            "xmark1" => Dataset::XMark(1),
            "xmark2" => Dataset::XMark(2),
            "xmark4" => Dataset::XMark(4),
            "xmark8" => Dataset::XMark(8),
            "epageo" => Dataset::EpaGeo,
            "dblp" => Dataset::Dblp,
            "psd" => Dataset::Psd,
            "wiki" => Dataset::Wiki,
            other => return Err(format!("unknown dataset `{other}`")),
        };
        Ok((format!("{} ({scale}‰)", ds.name()), ds.generate(scale)))
    } else if let Some(path) = file {
        let xml = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        Ok((path, xml))
    } else {
        Err("no input given".into())
    }
}

fn help() {
    println!(
        "commands:\n\
         \x20 query <mini-xpath>   evaluate with index acceleration, e.g. query //person[.//age = 42]\n\
         \x20 scan <mini-xpath>    evaluate by full scan (for comparison)\n\
         \x20 explain <mini-xpath> show the cost-based plan (probe/intersect/scan, est vs. actual counts)\n\
         \x20 eq <string>          string equality lookup over all nodes\n\
         \x20 range <lo> <hi>      double range lookup\n\
         \x20 contains <needle>    substring lookup over stored values\n\
         \x20 like <pattern>       wildcard lookup (* and ?)\n\
         \x20 set <node-id> <val>  update a text/attribute value (index maintained)\n\
         \x20 show <node-id>       print one node\n\
         \x20 stats                document, index and histogram/TreeStats statistics\n\
         \x20 metrics              Prometheus snapshot of the session's metrics registry\n\
         \x20 trace [clear]        flight recorder: slowest traced requests, stage by stage\n\
         \x20 quit"
    );
}

fn parse_range(rest: &str) -> Option<(f64, f64)> {
    let (a, b) = rest.split_once(' ')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

fn run_query(doc: &Document, idx: &IndexManager, accelerated: bool, q: &str, obs: &Obs) {
    let query = match QueryEngine::parse(q) {
        Ok(q) => q,
        Err(e) => {
            println!("error: {e}");
            return;
        }
    };
    let mode = if accelerated { "index" } else { "scan" };
    let trace = obs
        .tracer
        .start(if accelerated { "query" } else { "scan" }, q.to_string());
    let t = Instant::now();
    let result = if accelerated {
        let t0 = trace.now_ns();
        let plan = QueryEngine::plan(idx, &query);
        trace.record_stage(Stage::Plan, t0);
        trace.annotate(&format!("plan: {plan}"));
        QueryEngine::evaluate_with_plan_probed(doc, idx, &query, &plan, Some(&trace), &mut None)
    } else {
        let t0 = trace.now_ns();
        let result = QueryEngine::evaluate_scan(doc, &query);
        trace.record_stage(Stage::Execute, t0);
        result
    };
    let elapsed = t.elapsed();
    obs.registry
        .histogram(
            "xvi_repl_query_seconds",
            "Latency of REPL mini-XPath evaluations",
            &[("mode", mode)],
            Unit::Seconds,
        )
        .record(elapsed);
    obs.tracer.finish(trace);
    let ms = elapsed.as_secs_f64() * 1000.0;
    preview(doc, &result);
    println!("{} node(s) in {ms:.2} ms ({mode})", result.len());
}

fn timed_nodes(
    label: &str,
    doc: &Document,
    obs: &Obs,
    detail: &str,
    f: impl FnOnce() -> Vec<NodeId>,
) {
    let trace = obs.tracer.start("lookup", format!("{label} {detail}"));
    let t = Instant::now();
    let t0 = trace.now_ns();
    let result = f();
    trace.record_stage(Stage::Probe, t0);
    let elapsed = t.elapsed();
    obs.registry
        .histogram(
            "xvi_repl_lookup_seconds",
            "Latency of REPL point lookups",
            &[("kind", label)],
            Unit::Seconds,
        )
        .record(elapsed);
    obs.tracer.finish(trace);
    let ms = elapsed.as_secs_f64() * 1000.0;
    preview(doc, &result);
    println!("{label}: {} node(s) in {ms:.2} ms", result.len());
}

/// The REPL `metrics` command: refresh point-in-time storage gauges
/// from the live trees, then print the whole registry as a Prometheus
/// text exposition.
fn repl_metrics(idx: &IndexManager, obs: &Obs) {
    for (kind, t) in idx.tree_stats_by_kind() {
        let labels: &[(&str, &str)] = &[("kind", kind.as_str())];
        let g = |name: &str, help: &str, v: u64| {
            obs.registry.gauge(name, help, labels).set(v);
        };
        g("xvi_btree_entries", "Entries stored per tree", t.len as u64);
        g("xvi_btree_pages", "Arena pages per tree", t.pages as u64);
        g(
            "xvi_btree_shared_pages",
            "Copy-on-write shared arena pages per tree",
            t.shared_pages as u64,
        );
        g(
            "xvi_btree_pages_detached_total",
            "Cumulative copy-on-write page detaches per tree",
            t.pages_detached,
        );
        g(
            "xvi_btree_cache_hits_total",
            "Descents resolved at the branch-cached leaf",
            t.cache_hits,
        );
        g(
            "xvi_btree_cache_partial_hits_total",
            "Descents resolved from a cached ancestor",
            t.cache_partial_hits,
        );
        g(
            "xvi_btree_cache_misses_total",
            "Descents that fell back to a full root walk",
            t.cache_misses,
        );
    }
    print!("{}", obs.registry.snapshot().to_prometheus());
}

fn preview(doc: &Document, nodes: &[NodeId]) {
    for &n in nodes.iter().take(10) {
        show_node(doc, n);
    }
    if nodes.len() > 10 {
        println!("  … {} more", nodes.len() - 10);
    }
}

fn show_node(doc: &Document, n: NodeId) {
    if !doc.is_live(n) {
        println!("  [{}] <dead node>", n.index());
        return;
    }
    let mut value = doc.string_value(n);
    if value.len() > 60 {
        value.truncate(57);
        value.push('…');
    }
    let desc = match doc.kind(n) {
        NodeKind::Element(_) => format!("<{}>", doc.name(n).unwrap_or("?")),
        NodeKind::Text(_) => "#text".to_string(),
        NodeKind::Attribute { .. } => format!("@{}", doc.name(n).unwrap_or("?")),
        NodeKind::Comment(_) => "#comment".to_string(),
        NodeKind::Pi { .. } => "#pi".to_string(),
        NodeKind::Document => "#document".to_string(),
        NodeKind::Free => "<freed>".to_string(),
    };
    println!("  [{}] {desc} = {value:?}", n.index());
}

fn print_stats(doc: &Document, idx: &IndexManager) {
    let d = doc.stats();
    println!(
        "document: {} nodes ({} elements, {} text, {} attributes, {} other), ~{:.1} MB in memory",
        d.total_nodes,
        d.element_nodes,
        d.text_nodes,
        d.attribute_nodes,
        d.other_nodes,
        d.arena_bytes as f64 / 1048576.0
    );
    let s = idx.stats();
    println!(
        "string index: {} entries, ~{:.1} MB",
        s.string_entries,
        s.string_bytes as f64 / 1048576.0
    );
    for t in &s.typed {
        println!(
            "{} index: {} states / {} values, ~{:.1} MB",
            t.ty.name(),
            t.states,
            t.values,
            t.bytes as f64 / 1048576.0
        );
    }
    if let Some(sub) = idx.substring_index() {
        println!(
            "substring index: {} postings over {} nodes, ~{:.1} MB",
            sub.postings(),
            sub.indexed_nodes(),
            sub.approx_bytes() as f64 / 1048576.0
        );
    }
}
