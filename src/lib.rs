//! # xvi — Generic and Updatable XML Value Indices
//!
//! A from-scratch Rust reproduction of *"Generic and updatable XML value
//! indices covering equality and range lookups"* (Sidirourgos & Boncz,
//! EDBT 2009 / CWI INS-E0802).
//!
//! The crate is a facade over the workspace members:
//!
//! * [`hash`] — the circular-XOR string hash `H` and its associative
//!   combination function `C` (paper Figures 2–4).
//! * [`fsm`] — lexical finite state machines for XML typed values, the
//!   transition-monoid normalisation and state combination tables (SCT,
//!   paper Figures 5–6).
//! * [`xml`] — the XML substrate: a hand-written parser and an updatable
//!   document store with MonetDB/XQuery-style pre/size/level range
//!   encoding and the DFS cursor interface the paper's algorithms assume.
//! * [`btree`] — the B+tree substrate used by both index families.
//! * [`obs`] — the observability substrate: a lock-free metrics
//!   registry with Prometheus/JSON export, sampled request tracing
//!   with a slowest-requests flight recorder, and the shared latency
//!   histogram and clock primitives.
//! * [`index`] — the index manager: one-pass creation (paper Figure 7),
//!   ancestor-only updates (Figure 8), equi/range lookups, the
//!   commutative transaction layer (§5.1) and a mini-XPath evaluator.
//! * [`datagen`] — XMark-shaped and "real-life-alike" document
//!   generators plus update workloads used by the experiment harness.
//! * [`serve`] — the serving frontend: a hand-rolled async executor
//!   driving `CommitTicket` futures, bounded admission queues with
//!   typed overload rejection, deficit-round-robin tenant fairness,
//!   log-bucketed latency percentiles and config-driven streaming
//!   CSV/JSON/JSONL exports.
//!
//! ## Quickstart
//!
//! ```
//! use xvi::prelude::*;
//!
//! let doc = Document::parse(
//!     "<person><name><first>Arthur</first><family>Dent</family></name>\
//!      <age><decades>4</decades>2<years/></age></person>").unwrap();
//! let idx = IndexManager::build(&doc, IndexConfig::default());
//!
//! // Equality lookup on string values (any node, any path).
//! let hits = idx.query(&doc, &Lookup::equi("ArthurDent")).unwrap();
//! assert!(hits.iter().any(|&n| doc.name(n) == Some("name")));
//!
//! // Range lookup on typed (double) values — the mixed-content <age>
//! // node concatenates to "42" and is found by a numeric range scan.
//! let hits = idx.query(&doc, &Lookup::range_f64(40.0..=50.0)).unwrap();
//! assert!(hits.iter().any(|&n| doc.name(n) == Some("age")));
//! ```

pub use xvi_btree as btree;
pub use xvi_datagen as datagen;
pub use xvi_fsm as fsm;
pub use xvi_hash as hash;
pub use xvi_index as index;
pub use xvi_obs as obs;
pub use xvi_serve as serve;
pub use xvi_xml as xml;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use xvi_fsm::{Sct, TypedValue, XmlType};
    pub use xvi_hash::{combine, hash_str, HashValue};
    pub use xvi_index::{
        Bounds, CardinalityEstimate, CommitReceipt, CommitTicket, DocSnapshot, Durability,
        IndexConfig, IndexManager, IndexService, Lookup, Plan, PlannerConfig, QueryEngine,
        ServiceConfig, ServiceSnapshot, Statistics, TransactionalStore,
    };
    pub use xvi_obs::{Obs, Stage, Trace};
    pub use xvi_serve::{
        ExportSpec, LatencyHistogram, Request, Response, ResponseTicket, ServeError, Server,
        ServerConfig, ServerStats,
    };
    pub use xvi_xml::{Document, NodeId, NodeKind};
}
